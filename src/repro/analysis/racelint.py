"""``racelint``: static analysis for the atomicity contract.

``detlint`` polices *determinism* — two same-seed runs must be
byte-identical.  It says nothing about *atomicity*: a check-then-act race
that fires identically under the same seed passes every determinism pin.
In cooperative-async protocol code every ``await`` is a silent preemption
point, and the paper's correctness arguments (§3.3 token-forwarded
updates, §3.6 recovery merge) all assume each protocol step's
read-modify-write on shared server state is atomic.  ``racelint`` flags
the source shapes that break that assumption.

Rules (each also documented in :data:`RULES`):

``lockguard``
    ``await lock.acquire()`` whose matching ``release()`` is not in the
    ``finally`` of an immediately following ``try`` — an exception (or an
    early return) between acquire and release wedges every later
    acquirer.  Simple non-awaiting statements between the acquire and the
    ``try`` are tolerated; a second ``await`` / ``return`` / ``raise``
    before the guard is not.  A bare ``x.acquire()`` whose result future
    is discarded is also flagged (if the lock was free, it is now held by
    nobody who can release it).
``staleread``
    A shared container entry (``...tokens[k]``, ``...catalogs[k]``, a
    name bound from one) read before an ``await`` and written after it in
    the same function, outside a ``try``/``finally``-release lock guard
    spanning both.  Between the read and the write the task yielded; the
    write may act on a stale value.  Re-validate after the await, hold
    the lock across the span, or suppress with the reason the
    interleaving is benign.
``futleak``
    A pending future (a name bound from ``create_future()``) registered
    in a waiter table and awaited afterwards, without a ``finally`` that
    removes it — an exception mid-await leaks the waiter: ``release()``
    -style completions then "wake" a registration nobody owns, or the
    table wedges pending forever.
``callbackmut``
    Shared protocol state mutated from a *non-task* callback (a lambda or
    sync function handed to ``add_done_callback`` / ``schedule`` /
    ``post`` / ``call_at`` or an ``on_*`` keyword).  Callbacks run
    between task steps: a mutation there can interleave with a task that
    is mid-read-modify-write across an ``await`` and invalidate it —
    exactly the hazard ``ysan`` observes dynamically.
``pragma``
    A malformed suppression: ``# racelint: ok(rule)`` without a reason,
    or naming an unknown rule.

Suppression: append ``# racelint: ok(<rule>) - <reason>`` to the
offending line (or the line directly above it).  The reason is mandatory
— a suppression is a reviewed claim about why the interleaving is safe
(usually "the span holds lock L" or "single-writer by construction"),
and the claim must be stated.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass

#: rule name -> one-line description (the linter's public contract).
RULES: dict[str, str] = {
    "lockguard": "await lock.acquire() without an immediate try/finally "
                 "release (or an acquire future discarded outright)",
    "staleread": "shared state read before an await and written after it "
                 "without a lock guard spanning both (re-validate or hold "
                 "the lock)",
    "futleak": "pending future registered in a waiter table and awaited "
               "without a finally that removes it",
    "callbackmut": "shared protocol state mutated from a non-task "
                   "callback (runs between task steps)",
    "pragma": "malformed racelint suppression pragma",
}

#: (path suffix, exempt rules or None for all, reason).  Code outside the
#: cooperative protocol domain, where the rules' atomicity model does not
#: apply.
ALLOWLIST: list[tuple[str, frozenset[str] | None, str]] = [
    ("repro/analysis/ysan.py", None,
     "the sanitizer itself: its bookkeeping mirrors the shared-attr "
     "names it instruments"),
    ("repro/analysis/racelint.py", None,
     "rule tables quote the very shapes the linter flags"),
]

_PRAGMA_RE = re.compile(
    r"#\s*racelint:\s*ok\(\s*([a-z_]+(?:\s*,\s*[a-z_]+)*)\s*\)"
    r"\s*(?:[-—:]+\s*(\S.*))?$")

#: terminal attribute names of containers the atomicity contract covers —
#: the token table, replica records, catalogs and their major maps, token
#: holder sets, directory tables, and stripe maps.
SHARED_ATTRS = frozenset({
    "tokens", "replicas", "catalogs", "majors", "holders",
    "dirtable", "stripes", "read_ts",
})

#: method calls that mutate a container in place.
_MUTATING_METHODS = frozenset({
    "pop", "popitem", "clear", "update", "setdefault",
    "add", "discard", "remove", "append", "extend", "insert",
})

#: read-only accessor calls on shared containers.
_READING_METHODS = frozenset({"get", "keys", "values", "items"})

#: call names that register a callback in their arguments.
_CALLBACK_SINKS = frozenset({"add_done_callback", "schedule", "post",
                             "call_at"})


@dataclass(frozen=True)
class Violation:
    """One racelint finding, addressable as ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class _Pragma:
    line: int
    rules: frozenset[str]
    reason: str


def _collect_pragmas(source: str, path: str) -> tuple[dict[int, _Pragma],
                                                      list[Violation]]:
    """Parse ``# racelint: ok(...)`` comments; malformed ones are findings.

    Scans actual COMMENT tokens (not raw lines), so pragma examples quoted
    inside docstrings and string literals never count.
    """
    pragmas: dict[int, _Pragma] = {}
    bad: list[Violation] = []
    comments: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError):
        pass  # lint_source already rejects files that do not parse
    for lineno, text in comments:
        if "racelint:" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            bad.append(Violation(
                path, lineno, "pragma",
                "unparseable pragma; write "
                "'# racelint: ok(<rule>) - <reason>'"))
            continue
        rules = frozenset(r.strip() for r in match.group(1).split(","))
        unknown = rules - RULES.keys()
        if unknown:
            bad.append(Violation(
                path, lineno, "pragma",
                f"pragma names unknown rule(s): {', '.join(sorted(unknown))}"))
            continue
        reason = (match.group(2) or "").strip()
        if not reason:
            bad.append(Violation(
                path, lineno, "pragma",
                f"suppression of {', '.join(sorted(rules))} carries no "
                "reason; a pragma is a reviewed claim — state it"))
            continue
        pragmas[lineno] = _Pragma(lineno, rules, reason)
    return pragmas, bad


def _exempt_rules(path: str) -> frozenset[str] | None:
    """Rules the allowlist exempts for ``path`` (None = not exempt)."""
    norm = path.replace(os.sep, "/")
    exempt: set[str] = set()
    for suffix, rules, _reason in ALLOWLIST:
        if norm.endswith(suffix):
            if rules is None:
                return frozenset(RULES)
            exempt |= rules
    return frozenset(exempt) if exempt else None


def _expr_key(node: ast.AST) -> str:
    """Location- and context-free fingerprint of an expression."""
    return ast.dump(node, annotate_fields=False, include_attributes=False) \
        .replace("Store()", "Load()").replace("Del()", "Load()")


def _is_shared_subscript(node: ast.AST) -> str | None:
    """Terminal shared-attr name if ``node`` subscripts a shared container."""
    if (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr in SHARED_ATTRS):
        return node.value.attr
    return None


def _shared_read_call(node: ast.AST) -> str | None:
    """Shared attr if ``node`` is ``<...>.<shared>.get(...)`` etc."""
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr in _READING_METHODS
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr in SHARED_ATTRS):
        return node.func.value.attr
    return None


def _walk_scope(node: ast.AST):
    """Pre-order ast.walk that does not descend into nested defs.

    Yields in source order — the seen-before bookkeeping in the checkers
    (names bound from shared reads, futures bound from create_future)
    depends on bindings being visited before their uses.
    """
    stack = list(ast.iter_child_nodes(node))[::-1]
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(list(ast.iter_child_nodes(child))[::-1])


def _release_spans(fn: ast.AST) -> list[tuple[int, int]]:
    """Line spans of try statements whose finally releases a lock."""
    spans: list[tuple[int, int]] = []
    for node in _walk_scope(fn):
        if isinstance(node, ast.Try) and _finally_releases(node) is not None:
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _finally_releases(node: ast.Try) -> ast.expr | None:
    """The receiver of an ``X.release()`` call in the finally, if any."""
    for stmt in node.finalbody:
        for sub in ast.walk(stmt):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"):
                return sub.func.value
    return None


class _MutationScan:
    """Direct shared-state mutations inside one sync function or lambda."""

    @staticmethod
    def mutates(node: ast.AST) -> str | None:
        """Describe the first direct shared mutation in ``node``, or None."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and sub is not node:
                continue
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (sub.targets if isinstance(sub, ast.Assign)
                           else [sub.target])
                for target in targets:
                    attr = _is_shared_subscript(target)
                    if attr is not None:
                        return f"assigns .{attr}[...]"
            if isinstance(sub, ast.Delete):
                for target in sub.targets:
                    attr = _is_shared_subscript(target)
                    if attr is not None:
                        return f"deletes from .{attr}"
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATING_METHODS
                    and isinstance(sub.func.value, ast.Attribute)
                    and sub.func.value.attr in SHARED_ATTRS):
                return (f"calls .{sub.func.value.attr}"
                        f".{sub.func.attr}(...)")
        return None


class _ClassMutators(ast.NodeVisitor):
    """Module pre-pass: per class, sync methods that mutate shared state."""

    def __init__(self) -> None:
        self.by_class: dict[str, dict[str, str]] = {}

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods: dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):  # sync only
                how = _MutationScan.mutates(stmt)
                if how is not None:
                    methods[stmt.name] = how
        self.by_class[node.name] = methods
        self.generic_visit(node)


class _Linter(ast.NodeVisitor):
    """The per-module rule pass."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.violations: list[Violation] = []
        mutators = _ClassMutators()
        mutators.visit(tree)
        self.class_mutators = mutators.by_class
        self._class_stack: list[str] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, getattr(node, "lineno", 0), rule, message))

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(self, fn: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> None:
        self._check_lockguard_blocks(fn)
        self._check_staleread(fn)
        self._check_futleak(fn)
        self._check_callbacks(fn)

    # ------------------------------------------------------------------ #
    # lockguard
    # ------------------------------------------------------------------ #

    @staticmethod
    def _acquire_receiver(stmt: ast.stmt) -> ast.expr | None:
        """Receiver X of a statement-level ``await X.acquire()``."""
        value = stmt.value if isinstance(stmt, (ast.Expr, ast.Assign)) \
            else None
        if isinstance(value, ast.Await):
            value = value.value
        else:
            return None
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "acquire"):
            return value.func.value
        return None

    @staticmethod
    def _has_await_or_exit(stmt: ast.stmt) -> bool:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Await, ast.Return, ast.Raise)):
                return True
        return False

    def _check_lockguard_blocks(self, fn: ast.AST) -> None:
        for node in _walk_scope(fn):
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if isinstance(block, list) and block \
                        and isinstance(block[0], ast.stmt):
                    self._scan_block(block)
        # the function's own body
        body = getattr(fn, "body", None)
        if isinstance(body, list):
            self._scan_block(body)

    def _scan_block(self, stmts: list[ast.stmt]) -> None:
        for i, stmt in enumerate(stmts):
            # discarded acquire future: Expr of a bare X.acquire()
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                if (isinstance(call.func, ast.Attribute)
                        and call.func.attr == "acquire"):
                    self._flag(stmt, "lockguard",
                               "acquire() future discarded: if the lock was "
                               "free it is now held with no awaiter to "
                               "release it")
                    continue
            receiver = self._acquire_receiver(stmt)
            if receiver is None:
                continue
            want = _expr_key(receiver)
            guarded = False
            for nxt in stmts[i + 1:]:
                if isinstance(nxt, ast.Try):
                    released = _finally_releases(nxt)
                    guarded = (released is not None
                               and _expr_key(released) == want)
                    break
                if self._has_await_or_exit(nxt):
                    break  # yields or leaves before any guard: unprotected
            if not guarded:
                self._flag(stmt, "lockguard",
                           "await ...acquire() is not followed by a "
                           "try/finally that releases the same lock; an "
                           "exception here wedges every later acquirer")

    # ------------------------------------------------------------------ #
    # staleread
    # ------------------------------------------------------------------ #

    def _check_staleread(self, fn: ast.AST) -> None:
        awaits = sorted(sub.lineno for sub in _walk_scope(fn)
                        if isinstance(sub, ast.Await))
        if not awaits:
            return
        spans = _release_spans(fn)
        bound: dict[str, tuple[str, int]] = {}  # name -> (shared attr, line)
        reads: list[tuple[str, int]] = []
        # (attr, write line, node, binding line or None).  A write through
        # a *bound name* can only be stale relative to the read that bound
        # it — re-binding after an await is the re-validate idiom, and
        # pairing such a write with unrelated earlier reads of the same
        # container would flag exactly the code doing the right thing.
        writes: list[tuple[str, int, ast.AST, int | None]] = []
        for sub in _walk_scope(fn):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (sub.targets if isinstance(sub, ast.Assign)
                           else [sub.target])
                for target in targets:
                    attr = _is_shared_subscript(target)
                    if attr is not None:
                        writes.append((attr, target.lineno, sub, None))
                    elif (isinstance(target, ast.Attribute)
                          and isinstance(target.value, ast.Name)
                          and target.value.id in bound):
                        battr, bline = bound[target.value.id]
                        writes.append((battr, target.lineno, sub, bline))
                # name bound from a shared read: `token = ...tokens[k]`
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                        and isinstance(sub.targets[0], ast.Name):
                    value_attr = (_is_shared_subscript(sub.value)
                                  or _shared_read_call(sub.value))
                    if value_attr is not None:
                        bound[sub.targets[0].id] = (value_attr, sub.lineno)
            if isinstance(sub, ast.Subscript) \
                    and isinstance(sub.ctx, ast.Load):
                attr = _is_shared_subscript(sub)
                if attr is not None:
                    reads.append((attr, sub.lineno))
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    attr = _is_shared_subscript(target)
                    if attr is not None:
                        writes.append((attr, target.lineno, sub, None))
            elif isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Attribute):
                attr_read = _shared_read_call(sub)
                if attr_read is not None:
                    reads.append((attr_read, sub.lineno))
                elif (sub.func.attr in _MUTATING_METHODS
                      and isinstance(sub.func.value, ast.Attribute)
                      and sub.func.value.attr in SHARED_ATTRS):
                    writes.append(
                        (sub.func.value.attr, sub.lineno, sub, None))
                    # `info.holders.discard(x)` where info came from a
                    # shared read: the mutation also writes through the
                    # container the name was bound from
                    base = sub.func.value.value
                    if isinstance(base, ast.Name) and base.id in bound:
                        battr, bline = bound[base.id]
                        writes.append((battr, sub.lineno, sub, bline))
        flagged: set[tuple[str, int]] = set()
        for attr, wline, wnode, bind_line in writes:
            if (attr, wline) in flagged:
                continue
            candidates = ([(attr, bind_line)] if bind_line is not None
                          else reads + [v for v in bound.values()])
            for rattr, rline in candidates:
                if rattr != attr or rline >= wline:
                    continue
                if not any(rline < a <= wline for a in awaits):
                    continue
                if any(lo <= rline and wline <= hi for lo, hi in spans):
                    continue
                flagged.add((attr, wline))
                self._flag(wnode, "staleread",
                           f"'.{attr}' read at line {rline} crosses an "
                           "await before this write; the task yielded in "
                           "between — re-validate, hold the lock across "
                           "the span, or state why the interleaving is "
                           "benign")
                break

    # ------------------------------------------------------------------ #
    # futleak
    # ------------------------------------------------------------------ #

    def _check_futleak(self, fn: ast.AST) -> None:
        future_names: set[str] = set()
        registrations: list[tuple[str, ast.stmt]] = []
        removal_tables: set[str] = set()
        awaits: list[int] = []
        for sub in _walk_scope(fn):
            if isinstance(sub, ast.Await):
                awaits.append(sub.lineno)
            if isinstance(sub, ast.Assign):
                value = sub.value
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and value.func.attr == "create_future"):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            future_names.add(target.id)
                # table[key] = fut
                if isinstance(value, ast.Name) and value.id in future_names:
                    for target in sub.targets:
                        if (isinstance(target, ast.Subscript)
                                and isinstance(target.value, ast.Attribute)):
                            registrations.append(
                                (target.value.attr, sub))
            if isinstance(sub, ast.Try):
                for stmt in sub.finalbody:
                    for inner in ast.walk(stmt):
                        if (isinstance(inner, ast.Call)
                                and isinstance(inner.func, ast.Attribute)
                                and inner.func.attr in ("pop", "__delitem__")
                                and isinstance(inner.func.value,
                                               ast.Attribute)):
                            removal_tables.add(inner.func.value.attr)
                        if isinstance(inner, ast.Delete):
                            for target in inner.targets:
                                if (isinstance(target, ast.Subscript)
                                        and isinstance(target.value,
                                                       ast.Attribute)):
                                    removal_tables.add(target.value.attr)
        for table, stmt in registrations:
            if table in removal_tables:
                continue
            if not any(a > stmt.lineno for a in awaits):
                continue  # nothing yields after the registration
            self._flag(stmt, "futleak",
                       f"pending future registered in '.{table}' and "
                       "awaited after, with no finally removing it; an "
                       "exception mid-await leaks the waiter")

    # ------------------------------------------------------------------ #
    # callbackmut
    # ------------------------------------------------------------------ #

    def _callback_args(self, call: ast.Call) -> list[ast.expr]:
        out: list[ast.expr] = []
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if name in _CALLBACK_SINKS:
            if name == "add_done_callback":
                out.extend(call.args[:1])
            else:  # schedule/post/call_at: (delay, fn, *args)
                out.extend(call.args[1:2])
        out.extend(kw.value for kw in call.keywords
                   if kw.arg is not None and kw.arg.startswith("on_"))
        return out

    def _check_callbacks(self, fn: ast.AST) -> None:
        local_defs = {stmt.name: stmt for stmt in _walk_scope(fn)
                      if isinstance(stmt, ast.FunctionDef)}
        mutating_methods = (self.class_mutators.get(self._class_stack[-1], {})
                            if self._class_stack else {})
        for sub in _walk_scope(fn):
            if not isinstance(sub, ast.Call):
                continue
            for arg in self._callback_args(sub):
                how = self._callback_mutates(arg, local_defs,
                                             mutating_methods)
                if how is not None:
                    self._flag(sub, "callbackmut",
                               f"callback {how}; it runs between task "
                               "steps and can interleave with a task "
                               "mid-read-modify-write")
                    break

    def _callback_mutates(self, arg: ast.expr,
                          local_defs: dict[str, ast.FunctionDef],
                          mutating_methods: dict[str, str]) -> str | None:
        target: ast.AST | None = None
        label = ""
        if isinstance(arg, ast.Lambda):
            target, label = arg, "lambda"
        elif isinstance(arg, ast.Name) and arg.id in local_defs:
            target, label = local_defs[arg.id], f"'{arg.id}'"
        elif (isinstance(arg, ast.Attribute)
              and isinstance(arg.value, ast.Name)
              and arg.value.id == "self" and arg.attr in mutating_methods):
            return (f"'self.{arg.attr}' {mutating_methods[arg.attr]} "
                    "on shared state")
        if target is None:
            return None
        how = _MutationScan.mutates(target)
        if how is not None:
            return f"{label} {how} on shared state"
        # one level of indirection: lambda/def calling a mutating method
        for sub in ast.walk(target):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == "self"
                    and sub.func.attr in mutating_methods):
                return (f"{label} calls 'self.{sub.func.attr}', which "
                        f"{mutating_methods[sub.func.attr]} on shared state")
        return None


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one module's source text; returns unsuppressed violations.

    Applies the allowlist (by ``path`` suffix) and honors suppression
    pragmas on the violation's line or the line directly above it.
    Malformed pragmas are themselves violations and cannot be suppressed.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "pragma",
                          f"file does not parse: {exc.msg}")]
    pragmas, bad_pragmas = _collect_pragmas(source, path)
    linter = _Linter(path, tree)
    linter.visit(tree)
    exempt = _exempt_rules(path)
    out: list[Violation] = list(bad_pragmas)
    seen: set[tuple[int, str, str]] = set()
    for violation in linter.violations:
        if exempt is not None and violation.rule in exempt:
            continue
        pragma = pragmas.get(violation.line) or pragmas.get(violation.line - 1)
        if pragma is not None and violation.rule in pragma.rules:
            continue
        key = (violation.line, violation.rule, violation.message)
        if key in seen:
            continue  # nested-block scans can visit a statement twice
        seen.add(key)
        out.append(violation)
    out.sort(key=lambda v: (v.path, v.line, v.rule))
    return out


def lint_paths(paths: list[str]) -> list[Violation]:
    """Lint ``.py`` files under each path (file or directory tree)."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__")
                files.extend(os.path.join(dirpath, name)
                             for name in sorted(filenames)
                             if name.endswith(".py"))
        elif path.endswith(".py"):
            files.append(path)
    out: list[Violation] = []
    for filename in files:
        with open(filename, encoding="utf-8") as handle:
            out.extend(lint_source(handle.read(), filename))
    out.sort(key=lambda v: (v.path, v.line, v.rule))
    return out


def format_violations(violations: list[Violation]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    if not violations:
        return "racelint: clean (0 violations)"
    lines = [v.format() for v in violations]
    by_rule: dict[str, int] = {}
    for v in violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    summary = "  ".join(f"{rule}: {count}"
                        for rule, count in sorted(by_rule.items()))
    lines.append(f"racelint: {len(violations)} violation(s)  [{summary}]")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro racelint`` (returns the exit code)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro racelint",
        description="Atomicity-contract linter over sim-domain sources.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule:<12} {description}")
        return 0
    violations = lint_paths(args.paths)
    print(format_violations(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
