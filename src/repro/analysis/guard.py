"""Runtime determinism guard: forbidden entropy sources raise in sim time.

``detlint`` proves at review time that sim-domain *source* never reads the
host clock or the global RNG; :class:`DeterminismGuard` proves it at *run*
time, covering the paths static analysis cannot see (third-party calls,
getattr dispatch, code the linter was suppressed on).  Opt in with
``build_cluster(det_guard=True)``: while the kernel is dispatching events,
calling ``time.time`` / ``monotonic`` / ``perf_counter`` (and ``_ns``
twins), any module-global ``random`` function, ``os.urandom``,
``uuid.uuid1`` / ``uuid.uuid4``, or constructing an **unseeded**
``random.Random()`` raises :class:`DeterminismError` at the offending
call site — the cheapest possible bisection.

Mechanics: the guard patches the *module attributes* with pass-through
wrappers.  Outside the kernel run loop (workload generation, benchmark
harness code, pytest itself) the wrappers delegate to the originals, so
installing a guard never breaks real-time code; the kernel flips
``engaged`` around its dispatch loops.  ``datetime.datetime.now`` lives on
a C type and cannot be patched — the static rule covers it.

Installation is process-global and refcounted (several live clusters may
each request a guard); :func:`acquire` / :func:`release` pair up, and
``Cluster.close()`` releases automatically.
"""

from __future__ import annotations

import os
import random
import time
import uuid
from typing import Any, Callable


class DeterminismError(RuntimeError):
    """A forbidden global entropy source was read inside the sim loop."""


#: (module, attribute) pairs patched with engaged-check wrappers.
_PATCHED_FUNCTIONS: list[tuple[Any, str]] = [
    (time, "time"), (time, "time_ns"),
    (time, "monotonic"), (time, "monotonic_ns"),
    (time, "perf_counter"), (time, "perf_counter_ns"),
    (os, "urandom"),
    (uuid, "uuid1"), (uuid, "uuid4"),
    (random, "random"), (random, "randrange"), (random, "randint"),
    (random, "uniform"), (random, "choice"), (random, "choices"),
    (random, "shuffle"), (random, "sample"), (random, "gauss"),
    (random, "getrandbits"), (random, "seed"),
]


class DeterminismGuard:
    """Patches global entropy sources to raise while ``engaged``.

    One instance per process (see :func:`acquire`); ``engaged`` is flipped
    by the kernel around event dispatch, so the wrappers cost one bool
    check when sim code legitimately runs in real time (CLI, benchmarks).
    """

    def __init__(self) -> None:
        self.engaged = False
        self.refs = 0
        self._saved: list[tuple[Any, str, Any]] = []
        self._installed = False

    def _wrap(self, module: Any, name: str,
              original: Callable) -> Callable:
        qualified = f"{module.__name__}.{name}"

        def guarded(*args: Any, **kwargs: Any) -> Any:
            if self.engaged:
                raise DeterminismError(
                    f"{qualified}() called inside the simulation loop; "
                    "sim code must use kernel.now / the injected seeded "
                    "rng (det_guard tripwire)")
            return original(*args, **kwargs)

        guarded.__name__ = name
        guarded.__qualname__ = name
        guarded._det_guard_original = original  # type: ignore[attr-defined]
        return guarded

    def install(self) -> None:
        """Patch the module attributes (idempotent)."""
        if self._installed:
            return
        self._installed = True
        for module, name in _PATCHED_FUNCTIONS:
            original = getattr(module, name)
            self._saved.append((module, name, original))
            setattr(module, name, self._wrap(module, name, original))
        # random.Random() with NO seed argument self-seeds from OS
        # entropy; a subclass keeps isinstance() and seeded construction
        # working everywhere else.
        original_random = random.Random
        self._saved.append((random, "Random", original_random))
        guard = self

        class GuardedRandom(original_random):  # type: ignore[valid-type,misc]
            def __init__(self, *args: Any, **kwargs: Any) -> None:
                if guard.engaged and not args and not kwargs:
                    raise DeterminismError(
                        "random.Random() constructed without a seed "
                        "inside the simulation loop; pass an explicit "
                        "seed (det_guard tripwire)")
                super().__init__(*args, **kwargs)

        GuardedRandom.__name__ = "Random"
        GuardedRandom.__qualname__ = "Random"
        random.Random = GuardedRandom  # type: ignore[misc]

    def uninstall(self) -> None:
        """Restore every patched attribute (idempotent)."""
        if not self._installed:
            return
        self._installed = False
        for module, name, original in reversed(self._saved):
            setattr(module, name, original)
        self._saved.clear()
        self.engaged = False


_singleton: DeterminismGuard | None = None


def acquire() -> DeterminismGuard:
    """Install (or share) the process-wide guard; pair with :func:`release`."""
    global _singleton
    if _singleton is None:
        _singleton = DeterminismGuard()
        _singleton.install()
    _singleton.refs += 1
    return _singleton


def release(guard: DeterminismGuard | None) -> None:
    """Drop one reference; the last release uninstalls the patches."""
    global _singleton
    if guard is None or guard is not _singleton:
        return
    guard.refs -= 1
    if guard.refs <= 0:
        guard.uninstall()
        _singleton = None
