"""Determinism tooling: static analysis, runtime guard, divergence bisection.

The simulator's correctness evidence rests on one contract: **two same-seed
runs are byte-identical** — same event order, same RNG draws, same metrics,
same snapshots.  This package enforces and debugs that contract:

- :mod:`repro.analysis.detlint` — an AST linter over ``src/repro/`` that
  flags code which can break the contract (wall-clock reads, global RNG
  use, OS entropy, ``id()``-as-ordering, unordered dict/set iteration
  feeding event scheduling).  ``repro detlint src/`` on the CLI.
- :mod:`repro.analysis.guard` — :class:`DeterminismGuard`, an opt-in
  runtime tripwire (``build_cluster(det_guard=True)``) that makes the
  forbidden global entropy sources *raise* while the kernel is dispatching
  events.
- :mod:`repro.analysis.witness` — :class:`WitnessRecorder`, a per-event
  rolling hash chain the kernel folds each dispatched event into (off by
  default; one ``is None`` test per event when off).
- :mod:`repro.analysis.detcheck` — run a seeded workload twice, compare
  witness chains, and binary-search checkpointed prefixes to name the
  *first divergent event*.  ``repro detcheck`` on the CLI.

Its younger sibling is the **atomicity** contract: every protocol step's
read-modify-write on shared server state must be atomic across the
``await`` yield points of the cooperative runtime.  Same shape, same
division of labor:

- :mod:`repro.analysis.racelint` — an AST linter flagging unguarded lock
  acquires, stale reads across awaits, leaked waiter futures, and
  shared-state mutation from non-task callbacks.  ``repro racelint src``
  on the CLI.
- :mod:`repro.analysis.ysan` — :class:`YieldSanitizer`, an opt-in runtime
  check-then-act detector (``build_cluster(ysan=True)``) over tracked
  shared containers (off by default; one ``is None`` test per task step
  when off).
- :mod:`repro.analysis.racecheck` — run N seeded schedule perturbations
  of a workload with ysan armed; hits replay exactly from
  ``(seed, perturb_seed)`` and come with a witness-labeled event
  neighborhood.  ``repro racecheck`` on the CLI.
"""

from repro.analysis.detlint import (RULES, Violation, format_violations,
                                    lint_paths, lint_source)
from repro.analysis.guard import DeterminismError, DeterminismGuard
from repro.analysis.witness import WitnessRecorder
from repro.analysis.detcheck import detcheck
from repro.analysis.ysan import RaceViolation, TrackedDict, YieldSanitizer
from repro.analysis.racecheck import racecheck

__all__ = [
    "RULES", "Violation", "format_violations", "lint_paths", "lint_source",
    "DeterminismError", "DeterminismGuard", "WitnessRecorder", "detcheck",
    "RaceViolation", "TrackedDict", "YieldSanitizer", "racecheck",
]
