"""Determinism tooling: static analysis, runtime guard, divergence bisection.

The simulator's correctness evidence rests on one contract: **two same-seed
runs are byte-identical** — same event order, same RNG draws, same metrics,
same snapshots.  This package enforces and debugs that contract:

- :mod:`repro.analysis.detlint` — an AST linter over ``src/repro/`` that
  flags code which can break the contract (wall-clock reads, global RNG
  use, OS entropy, ``id()``-as-ordering, unordered dict/set iteration
  feeding event scheduling).  ``repro detlint src/`` on the CLI.
- :mod:`repro.analysis.guard` — :class:`DeterminismGuard`, an opt-in
  runtime tripwire (``build_cluster(det_guard=True)``) that makes the
  forbidden global entropy sources *raise* while the kernel is dispatching
  events.
- :mod:`repro.analysis.witness` — :class:`WitnessRecorder`, a per-event
  rolling hash chain the kernel folds each dispatched event into (off by
  default; one ``is None`` test per event when off).
- :mod:`repro.analysis.detcheck` — run a seeded workload twice, compare
  witness chains, and binary-search checkpointed prefixes to name the
  *first divergent event*.  ``repro detcheck`` on the CLI.
"""

from repro.analysis.detlint import (RULES, Violation, format_violations,
                                    lint_paths, lint_source)
from repro.analysis.guard import DeterminismError, DeterminismGuard
from repro.analysis.witness import WitnessRecorder
from repro.analysis.detcheck import detcheck

__all__ = [
    "RULES", "Violation", "format_violations", "lint_paths", "lint_source",
    "DeterminismError", "DeterminismGuard", "WitnessRecorder", "detcheck",
]
