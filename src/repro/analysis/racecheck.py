"""``repro racecheck``: seeded schedule perturbation with ysan armed.

A check-then-act race that never loses the tie-break under the default
schedule passes every determinism pin and every unperturbed test.
``racecheck`` goes looking for the losing tie-break:

1. for each ``perturb_seed`` in ``1..N``, build the cell with the
   yield sanitizer armed (:mod:`repro.analysis.ysan`) and a dedicated
   perturbation RNG shuffling same-timestamp zero-delay tie-breaking in
   the kernel (``Kernel.set_perturbation`` — a separate stream, so the
   workload/network RNGs draw exactly what they always draw);
2. replay the seeded workload; collect ysan violations, invariant-oracle
   failures (at most one *enabled* write token per ``(sid, major)``
   cell-wide — §3.3's single-writer guarantee), and any hard errors;
3. on a hit, re-run the **same** ``(seed, perturb_seed)`` — perturbed
   runs are exactly reproducible because the perturbation stream is
   seeded too — with a witness detail window around the hit, which
   yields the labeled event neighborhood in the same form
   ``detcheck``'s bisector reports, ready for comparison against an
   unperturbed chain.

Exit status is clean only when every schedule runs to completion with
zero violations and zero oracle failures.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.witness import WitnessRecorder


def check_invariants(cluster: Any) -> list[str]:
    """Cell-wide protocol invariants checkable from the outside.

    §3.3: updates to one major funnel through a single write token, so at
    most one server may hold it *enabled* at any quiet point.
    """
    problems: list[str] = []
    enabled: dict[Any, list[str]] = {}
    for server in cluster.servers:
        for key, token in sorted(server.segments.store.tokens.items()):
            if token.enabled:
                enabled.setdefault(key, []).append(server.addr)
    for key, addrs in sorted(enabled.items()):
        if len(addrs) > 1:
            problems.append(
                f"token {key} enabled on {addrs} simultaneously "
                "(single-writer invariant)")
    return problems


def _run_once(workload: str, n_servers: int, n_agents: int,
              duration_ms: float, seed: int, perturb_seed: int,
              detail_range: tuple[int, int] | None = None,
              limit: float = 10_000_000.0) -> dict[str, Any]:
    """One perturbed, sanitized workload run; returns its findings."""
    from repro.testbed import build_scale_cluster
    from repro.workloads import (WorkloadConfig, WorkloadGenerator,
                                 hotspot_config, streaming_config)
    from repro.workloads.replay import replay

    factory = {"hotspot": hotspot_config, "zipf": hotspot_config,
               "baseline": WorkloadConfig,
               "streaming": streaming_config}[workload]
    cfg = factory(n_clients=n_agents, duration_ms=duration_ms, seed=seed)
    ops = WorkloadGenerator(cfg).generate()
    cluster = build_scale_cluster(n_servers=n_servers, n_agents=n_agents,
                                  seed=seed, ysan=True,
                                  perturb_seed=perturb_seed)
    witness = None
    if detail_range is not None:
        witness = WitnessRecorder(detail_range=detail_range)
        cluster.kernel.set_witness(witness)
    error: str | None = None
    oracle: list[str] = []
    try:
        cluster.run(replay(cluster, ops), limit=limit)
        cluster.settle(500.0)
        oracle = check_invariants(cluster)
    except Exception as exc:  # a perturbed schedule may break outright
        error = f"{type(exc).__name__}: {exc}"
    sanitizer = cluster.ysan
    events = cluster.kernel.events_processed
    cluster.close()
    return {"sanitizer": sanitizer, "oracle": oracle, "error": error,
            "witness": witness, "events": events}


def racecheck(workload: str = "zipf", n_servers: int = 16, n_agents: int = 8,
              duration_ms: float = 2_000.0, seed: int = 42,
              schedules: int = 8, replay_hits: bool = True) -> dict[str, Any]:
    """Run ``schedules`` perturbed schedules; report every hit.

    Returns a report dict: ``clean`` (bool), per-schedule summaries, and
    for each hit a replay confirmation plus the witness-labeled event
    neighborhood around the first violation.
    """
    params = dict(workload=workload, n_servers=n_servers, n_agents=n_agents,
                  duration_ms=duration_ms, seed=seed, schedules=schedules)
    runs: list[dict[str, Any]] = []
    total_violations = 0
    for perturb_seed in range(1, schedules + 1):
        result = _run_once(workload, n_servers, n_agents, duration_ms,
                           seed, perturb_seed)
        sanitizer = result["sanitizer"]
        entry: dict[str, Any] = {
            "perturb_seed": perturb_seed,
            "events": result["events"],
            "violations": sanitizer.total_violations,
            "reports": [v.format() for v in sanitizer.violations[:8]],
            "oracle": result["oracle"],
            "error": result["error"],
        }
        total_violations += sanitizer.total_violations
        if sanitizer.total_violations and replay_hits:
            first = sanitizer.violations[0]
            lo = max(0, first.read_event - 2)
            hi = first.write_event + 3
            confirm = _run_once(workload, n_servers, n_agents, duration_ms,
                                seed, perturb_seed, detail_range=(lo, hi))
            re_sanitizer = confirm["sanitizer"]
            entry["replayed"] = bool(
                re_sanitizer.violations
                and re_sanitizer.violations[0] == first)
            entry["witness_window"] = [
                {"index": idx, "when": when, "seq": seq, "label": label}
                for idx, when, seq, label in confirm["witness"].details]
        runs.append(entry)
    clean = (total_violations == 0
             and all(not r["oracle"] and r["error"] is None for r in runs))
    return {"params": params, "runs": runs,
            "violations": total_violations, "clean": clean}


def format_report(report: dict[str, Any]) -> str:
    """Human-readable racecheck report."""
    params = report["params"]
    lines = [
        f"racecheck: {params['workload']} workload, "
        f"{params['n_servers']} servers / {params['n_agents']} agents, "
        f"seed {params['seed']}, {params['schedules']} perturbed schedules",
    ]
    for run in report["runs"]:
        status = "clean"
        if run["error"]:
            status = f"ERROR {run['error']}"
        elif run["violations"] or run["oracle"]:
            status = (f"{run['violations']} violation(s), "
                      f"{len(run['oracle'])} oracle failure(s)")
        lines.append(f"  perturb_seed {run['perturb_seed']}: "
                     f"{run['events']} events — {status}")
        for text in run.get("reports", []):
            lines.append(f"    {text}")
        for text in run.get("oracle", []):
            lines.append(f"    oracle: {text}")
        if "replayed" in run:
            lines.append(
                f"    replay from (seed={params['seed']}, perturb_seed="
                f"{run['perturb_seed']}): "
                + ("EXACT — same violation at the same event positions"
                   if run["replayed"] else "did NOT reproduce (investigate)"))
        for event in run.get("witness_window", [])[:12]:
            lines.append(f"      event {event['index']}: t={event['when']:.3f} "
                         f"seq={event['seq']} {event['label']}")
    lines.append("racecheck: "
                 + ("CLEAN — every schedule atomicity-clean"
                    if report["clean"]
                    else f"{report['violations']} violation(s) across "
                         f"{len(report['runs'])} schedules"))
    return "\n".join(lines)
