"""``detlint``: static analysis for the determinism contract.

Every simulation in this repository promises that two same-seed runs are
byte-identical.  The promise dies quietly: one ``time.time()`` in a
protocol path, one module-global ``random.random()``, one iteration over a
``set`` of addresses that decides which replica gets the first RPC — and
the 64-server determinism pin goes red an afternoon of bisecting later.
``detlint`` proves the contract at review time instead.

Rules (each also documented in :data:`RULES`):

``wallclock``
    Reading the host clock (``time.time`` / ``monotonic`` /
    ``perf_counter`` / their ``_ns`` twins, ``datetime.now`` /
    ``utcnow`` / ``today``) in a sim-domain module.  Virtual time is
    ``kernel.now``; wall time differs between runs by construction.
``entropy``
    Drawing from the process-global ``random`` module instance
    (``random.random()``, ``random.choice()``, …), constructing an
    *unseeded* ``random.Random()`` (it seeds itself from OS entropy), or
    reseeding the global instance with ``random.seed``.  Only injected,
    explicitly seeded ``Random`` instances are legal in sim domain.
``osentropy``
    ``os.urandom``, ``uuid.uuid1`` / ``uuid.uuid4``, or anything from
    ``secrets`` — OS entropy that no seed controls.
``idorder``
    Using ``id(...)`` as an ordering key (inside ``sorted`` / ``.sort`` /
    ``min`` / ``max`` or an ordering comparison).  CPython addresses vary
    per run; ``id()`` is only legal for identity/membership bookkeeping.
``iterorder``
    The subtle one: iterating a ``dict`` / ``set`` (``.items()`` /
    ``.values()`` / ``.keys()``, a set literal/constructor, or a name the
    module assigns a set to) in a loop whose body **schedules events,
    sends messages, completes futures, or draws from an RNG** — without
    wrapping the iterable in ``sorted(...)``.  Dict order is insertion
    order (deterministic only if every insertion is); set order hinges on
    string hashing, which ``PYTHONHASHSEED`` scrambles between processes.
``pragma``
    A malformed suppression: ``# detlint: ok(rule)`` without a reason, or
    naming an unknown rule.

Suppression: append ``# detlint: ok(<rule>) - <reason>`` to the offending
line (or the line directly above it).  The reason is mandatory — a
suppression is a reviewed claim, and the claim must be stated.

Allowlist: the real-time seam — modules that *legitimately* touch the
host clock or OS (wall-clock benchmarking, durable file I/O) — is exempt
per rule in :data:`ALLOWLIST`, each entry with its reason.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass

#: rule name -> one-line description (the linter's public contract).
RULES: dict[str, str] = {
    "wallclock": "host clock read in sim domain (use kernel.now)",
    "entropy": "process-global or unseeded random use (inject a seeded "
               "random.Random instead)",
    "osentropy": "OS entropy (os.urandom / uuid1 / uuid4 / secrets) in "
                 "sim domain",
    "idorder": "id() used as an ordering key (addresses vary per run)",
    "iterorder": "unordered dict/set iteration feeding event scheduling, "
                 "message sends, future completion, or RNG draws "
                 "(wrap in sorted(...))",
    "pragma": "malformed detlint suppression pragma",
}

#: (path suffix, exempt rules or None for all, reason).  The real-time
#: seam: code that measures or persists in *host* time on purpose.
ALLOWLIST: list[tuple[str, frozenset[str] | None, str]] = [
    ("repro/cli.py", frozenset({"wallclock"}),
     "profile/restart-bench subcommands report real wall time"),
    ("repro/restartbench.py", frozenset({"wallclock"}),
     "restart benchmark times real journal replay and cold start"),
    ("repro/storage/backend.py", None,
     "durability seam: real file I/O outside the simulation clock"),
    ("repro/metrics.py", frozenset({"wallclock"}),
     "harness-level reports may stamp real wall time"),
    ("repro/obs/loadtest.py", frozenset({"wallclock"}),
     "saturation harness reports real wall seconds per ramp step; "
     "simulated time comes from kernel.now"),
]

_PRAGMA_RE = re.compile(
    r"#\s*detlint:\s*ok\(\s*([a-z_]+(?:\s*,\s*[a-z_]+)*)\s*\)"
    r"\s*(?:[-—:]+\s*(\S.*))?$")

_WALLCLOCK_TIME_FNS = frozenset({
    "time", "monotonic", "perf_counter", "process_time",
    "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns",
})
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: module-global ``random.<fn>`` draws (shared-state or entropy-seeded).
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randrange", "randint", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "randbytes", "seed",
})

#: method names whose call inside a loop makes iteration order observable:
#: event scheduling, message transmission, future completion, RNG draws.
_EFFECT_METHODS = frozenset({
    # kernel scheduling
    "schedule", "post", "call_at", "spawn", "sleep", "wait_for",
    "_schedule_now", "run_until_complete",
    # network / group sends
    "send", "multicast", "transmit", "rpc", "call", "cbcast", "abcast",
    # future completion (wakes awaiting tasks in completion order)
    "set_result", "set_exception", "try_set_result", "try_set_exception",
    # RNG draws (consume the shared seeded stream)
    "random", "randrange", "randint", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "expovariate", "getrandbits",
})

#: wrappers that preserve their argument's iteration order.
_ORDER_PRESERVING_WRAPPERS = frozenset({
    "list", "tuple", "enumerate", "reversed", "iter",
})


@dataclass(frozen=True)
class Violation:
    """One detlint finding, addressable as ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class _Pragma:
    line: int
    rules: frozenset[str]
    reason: str


def _collect_pragmas(source: str, path: str) -> tuple[dict[int, _Pragma],
                                                      list[Violation]]:
    """Parse ``# detlint: ok(...)`` comments; malformed ones are findings.

    Scans actual COMMENT tokens (not raw lines), so pragma examples
    quoted inside docstrings and string literals never count.
    """
    pragmas: dict[int, _Pragma] = {}
    bad: list[Violation] = []
    comments: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError):
        pass  # lint_source already rejects files that do not parse
    for lineno, text in comments:
        if "detlint:" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            bad.append(Violation(
                path, lineno, "pragma",
                "unparseable pragma; write "
                "'# detlint: ok(<rule>) - <reason>'"))
            continue
        rules = frozenset(r.strip() for r in match.group(1).split(","))
        unknown = rules - RULES.keys()
        if unknown:
            bad.append(Violation(
                path, lineno, "pragma",
                f"pragma names unknown rule(s): {', '.join(sorted(unknown))}"))
            continue
        reason = (match.group(2) or "").strip()
        if not reason:
            bad.append(Violation(
                path, lineno, "pragma",
                f"suppression of {', '.join(sorted(rules))} carries no "
                "reason; a pragma is a reviewed claim — state it"))
            continue
        pragmas[lineno] = _Pragma(lineno, rules, reason)
    return pragmas, bad


def _exempt_rules(path: str) -> frozenset[str] | None:
    """Rules the allowlist exempts for ``path`` (None = not exempt)."""
    norm = path.replace(os.sep, "/")
    exempt: set[str] = set()
    for suffix, rules, _reason in ALLOWLIST:
        if norm.endswith(suffix):
            if rules is None:
                return frozenset(RULES)
            exempt |= rules
    return frozenset(exempt) if exempt else None


class _SetSymbols(ast.NodeVisitor):
    """Module pre-pass: names/attributes the module binds to sets.

    A heuristic on purpose — it records ``x = set(...)``, ``x = {a, b}``,
    set comprehensions, and ``x: set[...]`` / ``self.x: set[...]``
    annotations anywhere in the module.  Scope-blind: a name bound to a
    set in one function taints the name module-wide, which errs toward
    reporting (the cheap out is ``sorted(...)`` or a pragma).
    """

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.attrs: set[str] = set()

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    @staticmethod
    def _is_set_annotation(node: ast.AST) -> bool:
        target = node
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Name):
            return target.id in ("set", "frozenset", "Set", "FrozenSet",
                                 "MutableSet", "AbstractSet")
        if isinstance(target, ast.Attribute):
            return target.attr in ("Set", "FrozenSet", "MutableSet",
                                   "AbstractSet")
        return False

    def _record(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                self._record(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._is_set_annotation(node.annotation) or (
                node.value is not None and self._is_set_expr(node.value)):
            self._record(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # x |= {...} marks x set-like even without seeing its creation
        if self._is_set_expr(node.value):
            self._record(node.target)
        self.generic_visit(node)


class _Linter(ast.NodeVisitor):
    """The per-module rule pass."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.violations: list[Violation] = []
        #: local alias -> canonical module name, for ``import x as y``
        self.module_aliases: dict[str, str] = {}
        #: names ``from <mod> import <name>`` pulled in, per hazard class
        self.from_time: set[str] = set()
        self.from_datetime: set[str] = set()
        self.from_random: set[str] = set()
        self.from_os: set[str] = set()
        self.from_uuid: set[str] = set()
        symbols = _SetSymbols()
        symbols.visit(tree)
        self.set_names = symbols.names
        self.set_attrs = symbols.attrs

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, getattr(node, "lineno", 0), rule, message))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        pools = {"time": self.from_time, "datetime": self.from_datetime,
                 "random": self.from_random, "os": self.from_os,
                 "uuid": self.from_uuid}
        pool = pools.get(node.module or "")
        if pool is not None:
            for alias in node.names:
                pool.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _module_of(self, name: str) -> str | None:
        return self.module_aliases.get(name)

    # ------------------------------------------------------------------ #
    # call-site rules: wallclock / entropy / osentropy / idorder
    # ------------------------------------------------------------------ #

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        elif isinstance(func, ast.Name):
            self._check_name_call(node, func)
        self._check_ordering_args(node)
        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call,
                              func: ast.Attribute) -> None:
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            module = self._module_of(base.id)
            if module == "time" and attr in _WALLCLOCK_TIME_FNS:
                self._flag(node, "wallclock",
                           f"time.{attr}() reads the host clock; "
                           "sim code must use kernel.now")
                return
            if module == "random":
                if attr in _GLOBAL_RANDOM_FNS:
                    self._flag(node, "entropy",
                               f"random.{attr}() draws from the process-"
                               "global RNG; use the injected seeded rng")
                    return
                if attr == "Random" and not node.args and not node.keywords:
                    self._flag(node, "entropy",
                               "random.Random() without a seed draws its "
                               "seed from OS entropy")
                    return
            if module == "os" and attr == "urandom":
                self._flag(node, "osentropy", "os.urandom() is OS entropy")
                return
            if module == "uuid" and attr in ("uuid1", "uuid4"):
                self._flag(node, "osentropy",
                           f"uuid.{attr}() is OS-entropy/host-derived")
                return
            if module == "secrets":
                self._flag(node, "osentropy",
                           f"secrets.{attr}() is OS entropy")
                return
            if module == "datetime" and attr in _WALLCLOCK_DATETIME_FNS:
                self._flag(node, "wallclock",
                           f"datetime.{attr}() reads the host clock")
                return
        # datetime.datetime.now() / dt.datetime.now()
        if (attr in _WALLCLOCK_DATETIME_FNS
                and isinstance(base, ast.Attribute)
                and base.attr in ("datetime", "date")
                and isinstance(base.value, ast.Name)
                and self._module_of(base.value.id) == "datetime"):
            self._flag(node, "wallclock",
                       f"datetime.{base.attr}.{attr}() reads the host clock")
        # <name imported from datetime>.now()
        if (attr in _WALLCLOCK_DATETIME_FNS and isinstance(base, ast.Name)
                and base.id in self.from_datetime):
            self._flag(node, "wallclock",
                       f"{base.id}.{attr}() reads the host clock")

    def _check_name_call(self, node: ast.Call, func: ast.Name) -> None:
        name = func.id
        if name in self.from_time and name in _WALLCLOCK_TIME_FNS:
            self._flag(node, "wallclock",
                       f"{name}() (from time) reads the host clock")
        elif name in self.from_random:
            if name == "Random":
                if not node.args and not node.keywords:
                    self._flag(node, "entropy",
                               "Random() without a seed draws its seed "
                               "from OS entropy")
            elif name in _GLOBAL_RANDOM_FNS:
                self._flag(node, "entropy",
                           f"{name}() (from random) draws from the "
                           "process-global RNG")
        elif name in self.from_os and name == "urandom":
            self._flag(node, "osentropy", "urandom() is OS entropy")
        elif name in self.from_uuid and name in ("uuid1", "uuid4"):
            self._flag(node, "osentropy", f"{name}() is OS entropy")

    @staticmethod
    def _contains_id_call(node: ast.AST) -> ast.Call | None:
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id" and len(sub.args) == 1):
                return sub
        return None

    def _check_ordering_args(self, node: ast.Call) -> None:
        """``idorder``: id() feeding sorted/min/max/.sort/heap ordering."""
        func = node.func
        is_ordering = (
            (isinstance(func, ast.Name)
             and func.id in ("sorted", "min", "max"))
            or (isinstance(func, ast.Attribute)
                and func.attr in ("sort", "heappush", "heappushpop")))
        if not is_ordering:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            id_call = self._contains_id_call(arg)
            if id_call is not None:
                self._flag(id_call, "idorder",
                           "id() as an ordering key: CPython addresses "
                           "vary per run")
                return

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
               for op in node.ops):
            for side in [node.left] + node.comparators:
                if (isinstance(side, ast.Call)
                        and isinstance(side.func, ast.Name)
                        and side.func.id == "id"):
                    self._flag(side, "idorder",
                               "ordering comparison on id(): CPython "
                               "addresses vary per run")
                    break
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # iterorder
    # ------------------------------------------------------------------ #

    def _unordered_iter(self, expr: ast.AST) -> str | None:
        """Describe why ``expr`` iterates in container order, or None."""
        # unwrap order-preserving wrappers: list(d.items()), enumerate(s)…
        while (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
               and expr.func.id in _ORDER_PRESERVING_WRAPPERS and expr.args):
            expr = expr.args[0]
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("sorted",):
                return None  # explicitly ordered
            if isinstance(func, ast.Attribute) and func.attr in (
                    "items", "values", "keys"):
                return f".{func.attr}() iterates in dict insertion order"
            if (isinstance(func, ast.Name)
                    and func.id in ("set", "frozenset")):
                return "set() iterates in hash order"
            return None
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "set literal iterates in hash order"
        if isinstance(expr, ast.Name) and expr.id in self.set_names:
            return f"'{expr.id}' is set-typed; sets iterate in hash order"
        if (isinstance(expr, ast.Attribute)
                and expr.attr in self.set_attrs):
            return (f"'.{expr.attr}' is set-typed; sets iterate in "
                    "hash order")
        return None

    @staticmethod
    def _effect_call(body: list[ast.stmt]) -> str | None:
        """First scheduling/sending/RNG call inside ``body``, if any."""
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    func = sub.func
                    if (isinstance(func, ast.Attribute)
                            and func.attr in _EFFECT_METHODS):
                        return func.attr
        return None

    def _check_loop(self, node: ast.For | ast.AsyncFor) -> None:
        why = self._unordered_iter(node.iter)
        if why is None:
            return
        effect = self._effect_call(node.body)
        if effect is None:
            return
        self._flag(node, "iterorder",
                   f"loop body calls .{effect}() but {why}; wrap the "
                   "iterable in sorted(...) or suppress with a reason")

    def visit_For(self, node: ast.For) -> None:
        self._check_loop(node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_loop(node)
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST,
                             generators: list[ast.comprehension],
                             elements: list[ast.AST]) -> None:
        for gen in generators:
            why = self._unordered_iter(gen.iter)
            if why is None:
                continue
            for element in elements:
                for sub in ast.walk(element):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in _EFFECT_METHODS):
                        self._flag(
                            node, "iterorder",
                            f"comprehension calls .{sub.func.attr}() but "
                            f"{why}; wrap the iterable in sorted(...)")
                        return

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators, [node.elt])
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node, node.generators, [node.elt])
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, node.generators, [node.elt])
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, node.generators,
                                  [node.key, node.value])
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one module's source text; returns unsuppressed violations.

    Applies the allowlist (by ``path`` suffix) and honors suppression
    pragmas on the violation's line or the line directly above it.
    Malformed pragmas are themselves violations and cannot be suppressed.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "pragma",
                          f"file does not parse: {exc.msg}")]
    pragmas, bad_pragmas = _collect_pragmas(source, path)
    linter = _Linter(path, tree)
    linter.visit(tree)
    exempt = _exempt_rules(path)
    out: list[Violation] = list(bad_pragmas)
    for violation in linter.violations:
        if exempt is not None and violation.rule in exempt:
            continue
        pragma = pragmas.get(violation.line) or pragmas.get(violation.line - 1)
        if pragma is not None and violation.rule in pragma.rules:
            continue
        out.append(violation)
    out.sort(key=lambda v: (v.path, v.line, v.rule))
    return out


def lint_paths(paths: list[str]) -> list[Violation]:
    """Lint ``.py`` files under each path (file or directory tree)."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__")
                files.extend(os.path.join(dirpath, name)
                             for name in sorted(filenames)
                             if name.endswith(".py"))
        elif path.endswith(".py"):
            files.append(path)
    out: list[Violation] = []
    for filename in files:
        with open(filename, encoding="utf-8") as handle:
            out.extend(lint_source(handle.read(), filename))
    out.sort(key=lambda v: (v.path, v.line, v.rule))
    return out


def format_violations(violations: list[Violation]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    if not violations:
        return "detlint: clean (0 violations)"
    lines = [v.format() for v in violations]
    by_rule: dict[str, int] = {}
    for v in violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    summary = "  ".join(f"{rule}: {count}"
                        for rule, count in sorted(by_rule.items()))
    lines.append(f"detlint: {len(violations)} violation(s)  [{summary}]")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro detlint`` (returns the exit code)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro detlint",
        description="Determinism-contract linter over sim-domain sources.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule:<12} {description}")
        return 0
    violations = lint_paths(args.paths)
    print(format_violations(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
