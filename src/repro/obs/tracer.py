"""Virtual-time request tracing.

A :class:`Tracer` is armed on the kernel (``kernel.set_tracer``, wired
by ``build_cluster(tracing=True)``) exactly like the witness chain and
yield sanitizer: every hot-path hook is one attribute load plus an
``is None`` test when tracing is off.

Trace ids are minted at the NFS envelope — ``Agent._nfs`` mints one per
user-visible operation — and propagate two ways:

- **within a kernel**: the running :class:`~repro.sim.kernel.Task`
  carries ``task.trace``; ``Kernel.spawn`` copies it to children, so
  pipeline work forked on behalf of a request stays attributed;
- **across the wire**: ``Node.rpc``/``Node.send`` stamp the current
  task's trace id onto the outgoing :class:`~repro.net.message.Message`
  and ``Node._serve_rpc`` adopts it onto the serving task (and stamps
  the reply), so the id crosses agent → envelope → pipeline → disk.

Spans are plain tuples ``(trace_id, start_ms, end_ms, layer, label)``
appended to a bounded ring buffer — old spans fall off the front, the
simulation never grows without bound.  Everything is deterministic:
ids come from a per-tracer counter, times are virtual, and the span
stream of a same-seed run is byte-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

#: Canonical layer order for waterfall rendering (outermost first).
LAYERS = ("agent", "rpc", "pipeline", "disk", "net")

Span = tuple[int, float, float, str, str]


class Tracer:
    """Bounded per-cell span ring buffer plus the id mint."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self.spans: deque[Span] = deque(maxlen=capacity)
        self.minted = 0

    # -- hot-path surface ---------------------------------------------- #

    def mint(self) -> int:
        """Mint the next trace id (deterministic counter, 1-based)."""
        self.minted += 1
        return self.minted

    def record(self, trace_id: int, start: float, end: float,
               layer: str, label: str) -> None:
        """Append one span.  Called only when the tracer is armed."""
        self.spans.append((trace_id, start, end, layer, label))

    # -- forensics ----------------------------------------------------- #

    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id, in recording order."""
        out: dict[int, list[Span]] = {}
        for span in self.spans:
            out.setdefault(span[0], []).append(span)
        return out

    def slowest(self, n: int = 5,
                root_layer: str = "agent") -> list[tuple[float, int, list[Span]]]:
        """The ``n`` slowest complete traces, ranked by root-span length.

        A trace still in the buffer but whose root (``agent``-layer) span
        fell off the ring — or never finished — is skipped: its duration
        cannot be known.  Returns ``(duration_ms, trace_id, spans)``
        tuples, slowest first; ties break on trace id so the ranking is
        deterministic.
        """
        ranked = []
        for tid, spans in self.traces().items():
            roots = [s for s in spans if s[3] == root_layer]
            if not roots:
                continue
            duration = max(s[2] for s in roots) - min(s[1] for s in roots)
            ranked.append((duration, tid, spans))
        ranked.sort(key=lambda item: (-item[0], item[1]))
        return ranked[:n]

    # -- rendering ----------------------------------------------------- #

    @staticmethod
    def format_trace(trace_id: int, spans: Iterable[Span]) -> str:
        """One trace as an indented waterfall, times relative to start."""
        spans = sorted(spans, key=lambda s: (s[1], LAYERS.index(s[3])
                                             if s[3] in LAYERS else len(LAYERS)))
        t0 = min(s[1] for s in spans)
        t1 = max(s[2] for s in spans)
        root = next((s for s in spans if s[3] == "agent"), spans[0])
        lines = [f"trace {trace_id}  {root[4]}  {t1 - t0:.2f} ms "
                 f"({len(spans)} spans)"]
        for _tid, start, end, layer, label in spans:
            depth = LAYERS.index(layer) if layer in LAYERS else len(LAYERS)
            lines.append(f"  {'  ' * depth}[{layer:<8}] "
                         f"{start - t0:8.2f} .. {end - t0:8.2f}  {label}")
        return "\n".join(lines)

    def report(self, n: int = 5) -> str:
        """The ``slowest(n)`` exemplars, rendered (``repro trace``)."""
        ranked = self.slowest(n)
        if not ranked:
            return "no complete traces recorded"
        blocks = [f"slowest {len(ranked)} of {self.minted} traces "
                  f"({len(self.spans)} spans buffered, cap {self.capacity})"]
        for _duration, tid, spans in ranked:
            blocks.append(self.format_trace(tid, spans))
        return "\n\n".join(blocks)

    def snapshot(self) -> list[Span]:
        """The span stream as a list (for determinism pins)."""
        return list(self.spans)


def current_trace(kernel: Any) -> int | None:
    """Trace id of the task the kernel is currently stepping, if any.

    Safe to call from plain callbacks (returns ``None`` there) — but
    callers should gate on ``kernel._tracer is not None`` first so the
    off path stays one test.
    """
    task = kernel._current
    return None if task is None else task.trace
