"""The saturation/SLO harness: ramp concurrency until the cell saturates.

Malhotra et al.'s DFS comparison (PAPERS.md) frames saturation — the
knee point and p99 under overload — as *the* axis distributed file
systems differ on.  This driver ramps closed-loop agent concurrency
stepwise over fresh same-seed cells, measures virtual-time throughput
and latency percentiles per step, and locates the knee: the last step
where offered concurrency still bought meaningful throughput.

Each step is an independent deterministic simulation (fresh cluster,
same seed), so a step's numbers never depend on what ran before it and
the whole ramp is reproducible.  Clients are *closed-loop*: each issues
its next op when the previous completes, so offered load self-limits —
saturation shows up as per-op latency growth, exactly as in a real
benchmark rig.

The same driver powers the overload comparison: run at 2x the knee with
the admission gate off (queueing: p99 collapses) and on (BUSY + agent
backoff: p99 bounded, goodput held) — ``BENCH_slo`` pins both.
"""

from __future__ import annotations

import random
import time  # wall-clock is reported, never simulated (see detlint ALLOWLIST)
from dataclasses import asdict, dataclass

from repro.agent import AgentConfig
from repro.errors import NfsError
from repro.metrics import LatencyStats
from repro.obs.admission import AdmissionConfig
from repro.testbed import build_scale_cluster

DEFAULT_STEPS = (1, 2, 4, 8, 16)
#: A step whose throughput gain over the previous step is below this
#: fraction marks the knee (ops/s plateau).
KNEE_GAIN = 0.10


@dataclass
class StepResult:
    """One ramp step's outcome."""

    concurrency: int
    attempted: int
    succeeded: int
    failed: int
    ops_per_vs: float       # ops per *virtual* second — the paper-shaped number
    p50_ms: float
    p99_ms: float
    nfs_requests: int       # envelope requests issued (≥ attempted: a user
                            # op fans out into lookups + the data op)
    busy_rejected: int      # envelope-side BUSY answers (gate on)
    busy_retries: int       # agent-side BUSY retries (gate on)
    wall_s: float           # real seconds the step took to simulate


def _closed_loop(cluster, n_clients: int, duration_ms: float,
                 n_files: int, write_fraction: float, payload: bytes,
                 seed: int) -> tuple[LatencyStats, dict]:
    """Run ``n_clients`` closed-loop clients for ``duration_ms`` virtual."""
    kernel = cluster.kernel
    agents = cluster.agents
    stats = LatencyStats()
    counts = {"attempted": 0, "ok": 0, "failed": 0}

    n_servers = len(cluster.servers)

    async def drive():
        setup = agents[0]
        await setup.mount()
        try:
            # replicate the *directories* on every server (§4 tunable
            # replication): otherwise servers without a replica forward
            # every path lookup to the holders, and under overload their
            # clients jam on those internal hops instead of reaching the
            # local admission gate.  File data keeps its default replica
            # level — write cost stays representative.
            await setup.set_params("/", min_replicas=n_servers)
            await setup.mkdir("/", "lt")
            await setup.set_params("/lt", min_replicas=n_servers)
        except NfsError:
            pass
        paths = []
        for i in range(n_files):
            name = f"f{i}"
            try:
                await setup.create("/lt", name)
                await setup.write_file(f"/lt/{name}", payload)
            except NfsError:
                pass
            paths.append(f"/lt/{name}")
        end = kernel.now + duration_ms

        async def client(idx: int) -> None:
            agent = agents[idx]
            rng = random.Random((seed << 8) ^ idx)
            await agent.mount()
            while kernel.now < end:
                path = paths[rng.randrange(len(paths))]
                counts["attempted"] += 1
                t0 = kernel.now
                try:
                    if rng.random() < write_fraction:
                        await agent.write_file(path, payload)
                    else:
                        await agent.read_file(path)
                except NfsError:
                    counts["failed"] += 1
                    continue
                counts["ok"] += 1
                stats.record(kernel.now - t0)

        tasks = [kernel.spawn(client(i), name=f"lt:client:{i}")
                 for i in range(n_clients)]
        await kernel.all_of(tasks)

    cluster.run(drive(), limit=10_000_000.0)
    return stats, counts


def run_step(concurrency: int, n_servers: int = 4,
             duration_ms: float = 1500.0, seed: int = 42,
             n_files: int = 4, write_fraction: float = 0.3,
             payload_bytes: int = 2048,
             admission: AdmissionConfig | None = None,
             agent_config: AgentConfig | None = None) -> StepResult:
    """One ramp step on a fresh cell: ``concurrency`` closed-loop clients."""
    if agent_config is None:
        # no client caching: every op exercises the servers, so the step
        # measures cell capacity rather than agent-memory hit rates.
        # Patient BUSY handling: clients facing an admission gate should
        # wait out backpressure (bounded, staggered backoff) rather than
        # fail fast and hammer with fresh ops — ungated runs never see
        # BUSY, so this only shapes gated steps.
        agent_config = AgentConfig(cache=False, busy_retries=12)
    cluster = build_scale_cluster(n_servers=n_servers, n_agents=concurrency,
                                  seed=seed, agent_config=agent_config,
                                  admission=admission)
    wall0 = time.perf_counter()
    stats, counts = _closed_loop(cluster, concurrency, duration_ms,
                                 n_files, write_fraction,
                                 b"x" * payload_bytes, seed)
    wall = time.perf_counter() - wall0
    result = StepResult(
        concurrency=concurrency,
        attempted=counts["attempted"],
        succeeded=counts["ok"],
        failed=counts["failed"],
        ops_per_vs=counts["ok"] / (duration_ms / 1000.0),
        p50_ms=stats.percentile(50),
        p99_ms=stats.percentile(99),
        nfs_requests=cluster.metrics.get("nfs.requests"),
        busy_rejected=cluster.metrics.get("nfs.busy_rejected"),
        busy_retries=cluster.metrics.get("agent.busy_retries"),
        wall_s=wall,
    )
    cluster.close()
    return result


def find_knee(steps: list[StepResult],
              gain: float = KNEE_GAIN) -> StepResult:
    """The knee: the last step that still bought ``gain`` more ops/s.

    Walking the ramp in order, the first step whose throughput improves
    by less than ``gain`` over its predecessor marks the plateau — the
    predecessor is the knee.  A ramp that never plateaus knees at its
    last step (the cell out-scaled the ramp).
    """
    knee = steps[0]
    for prev, cur in zip(steps, steps[1:]):
        if cur.ops_per_vs < prev.ops_per_vs * (1.0 + gain):
            return prev
        knee = cur
    return knee


def loadtest(n_servers: int = 4, steps: tuple[int, ...] = DEFAULT_STEPS,
             duration_ms: float = 1500.0, seed: int = 42,
             slo_p99_ms: float | None = None,
             admission: AdmissionConfig | None = None,
             n_files: int = 4, write_fraction: float = 0.3,
             payload_bytes: int = 2048,
             agent_config: AgentConfig | None = None) -> dict:
    """Run the full ramp; report per-step numbers, the knee, and SLO fit."""
    results = [run_step(c, n_servers=n_servers, duration_ms=duration_ms,
                        seed=seed, n_files=n_files,
                        write_fraction=write_fraction,
                        payload_bytes=payload_bytes, admission=admission,
                        agent_config=agent_config)
               for c in steps]
    knee = find_knee(results)
    report: dict = {
        "n_servers": n_servers,
        "duration_ms": duration_ms,
        "seed": seed,
        "gated": admission is not None,
        "steps": [asdict(r) for r in results],
        "knee": asdict(knee),
        "slo_p99_ms": slo_p99_ms,
    }
    if slo_p99_ms is not None:
        report["slo_met_through"] = max(
            (r.concurrency for r in results if r.p99_ms <= slo_p99_ms),
            default=None)
    return report


def format_report(report: dict) -> str:
    """Operator-facing ramp table (``repro loadtest``)."""
    slo = report.get("slo_p99_ms")
    lines = [f"saturation ramp — {report['n_servers']} servers, "
             f"{report['duration_ms'] / 1000:.1f}s virtual per step, "
             f"seed {report['seed']}, gate "
             f"{'on' if report['gated'] else 'off'}"]
    header = (f"{'clients':>8} {'ops':>7} {'ok':>7} {'ops/vs':>9} "
              f"{'p50 ms':>8} {'p99 ms':>8} {'busy':>6} {'wall s':>7}")
    if slo is not None:
        header += f"  p99<={slo:g}?"
    lines.append(header)
    knee_c = report["knee"]["concurrency"]
    for row in report["steps"]:
        line = (f"{row['concurrency']:>8} {row['attempted']:>7} "
                f"{row['succeeded']:>7} {row['ops_per_vs']:>9.1f} "
                f"{row['p50_ms']:>8.2f} {row['p99_ms']:>8.2f} "
                f"{row['busy_rejected']:>6} {row['wall_s']:>7.2f}")
        if slo is not None:
            line += f"  {'yes' if row['p99_ms'] <= slo else 'NO'}"
        if row["concurrency"] == knee_c:
            line += "   <- knee"
        lines.append(line)
    lines.append(f"knee: {knee_c} clients at "
                 f"{report['knee']['ops_per_vs']:.1f} ops/virtual-s "
                 f"(p99 {report['knee']['p99_ms']:.2f} ms)")
    return "\n".join(lines)


def overload_comparison(n_servers: int = 4, duration_ms: float = 1500.0,
                        seed: int = 42, steps: tuple[int, ...] = DEFAULT_STEPS,
                        n_files: int = 4, write_fraction: float = 0.3,
                        payload_bytes: int = 2048,
                        rate_margin: float = 1.1,
                        burst: float | None = None) -> dict:
    """Gate-off vs gate-on at 2x the knee (the ``BENCH_slo`` headline).

    First the ungated ramp finds the knee; then the cell is driven at
    twice the knee concurrency, once ungated (queueing) and once with a
    per-server token bucket admitting ``rate_margin`` times the knee
    throughput (split evenly across servers — the gate charges one
    token per *data* op, so knee ops/s is the right calibration unit).
    Graceful degradation means the gated run's p99 stays near the
    knee's while its goodput stays within ~10% of the ungated peak.
    """
    ramp = loadtest(n_servers=n_servers, steps=steps,
                    duration_ms=duration_ms, seed=seed, n_files=n_files,
                    write_fraction=write_fraction,
                    payload_bytes=payload_bytes)
    knee = ramp["knee"]
    overload = 2 * knee["concurrency"]
    common = dict(n_servers=n_servers, duration_ms=duration_ms, seed=seed,
                  n_files=n_files, write_fraction=write_fraction,
                  payload_bytes=payload_bytes)
    ungated = run_step(overload, **common)
    rate_per_ms = (knee["ops_per_vs"] / 1000.0) * rate_margin / n_servers
    gate = AdmissionConfig(rate_per_ms=rate_per_ms,
                           burst=burst if burst is not None else
                           max(8.0, 100.0 * rate_per_ms))
    gated = run_step(overload, admission=gate, **common)
    peak = max(s["ops_per_vs"] for s in ramp["steps"])
    return {
        "ramp": ramp,
        "overload_concurrency": overload,
        "gate": {"rate_per_ms": rate_per_ms, "burst": gate.burst},
        "ungated": asdict(ungated),
        "gated": asdict(gated),
        "peak_ops_per_vs": peak,
        # goodput under the *same* 2x-knee offered load, gate on vs off:
        # the gate should shed latency, not throughput
        "goodput_ratio": (gated.ops_per_vs / ungated.ops_per_vs
                          if ungated.ops_per_vs else 0.0),
        "p99_ratio": (gated.p99_ms / ungated.p99_ms
                      if ungated.p99_ms else 0.0),
        # gated overload p99 relative to the knee's own p99 — "bounded"
        # means this stays near 1 while the ungated run's multiple grows
        "gated_p99_vs_knee": (gated.p99_ms / knee["p99_ms"]
                              if knee["p99_ms"] else 0.0),
    }
