"""Per-server health: the ``health`` admin RPC and the cell scraper.

:func:`server_health` assembles one server's reply — failure-detector
suspicion state (who this server suspects, since when, at what epoch),
token residency, replica/catalog counts, disk queue depths, and backend
status.  ``DeceitServer`` registers it as the ``health`` RPC handler,
so any node (an agent, an operator script, another cell) can scrape a
live server mid-run.

:func:`scrape_cell` walks a whole testbed cluster.  Dead servers do
**not** hang the scrape waiting out an RPC timeout: a server that is
fail-stopped (or partitioned from the scraping node) comes back as a
synthetic row with ``status == ERR_UNREACHABLE``, and the surviving
peers' rows carry their *last-known* view of it — the suspicion flag,
epoch, and since-when — which is exactly what an operator dashboard
shows for a down machine.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RpcTimeout, Unreachable

#: Status of a health row for a server that cannot answer.  A string —
#: deliberately distinguishable from every numeric ``NfsStat`` code.
ERR_UNREACHABLE = "unreachable"

HEALTH_RPC_TIMEOUT_MS = 200.0


def server_health(server: Any) -> dict:
    """Assemble the ``health`` reply for one live :class:`DeceitServer`."""
    proc = server.proc
    fd = proc.fd
    now = server.kernel.now
    since = getattr(fd, "suspected_since", {})
    peers = {}
    for peer in fd.peers:
        suspected = peer in fd.suspected
        entry: dict[str, Any] = {
            "suspected": suspected,
            "epoch": fd.peer_epochs.get(peer, 0),
            "last_heard_ms": fd.last_heard.get(peer),
        }
        if suspected:
            t = since.get(peer)
            entry["suspected_since_ms"] = t
            entry["suspected_for_ms"] = None if t is None else now - t
        peers[peer] = entry
    disk = server.disk
    seg = server.segments
    reply = {
        "status": 0,
        "addr": server.addr,
        "alive": proc.alive,
        "epoch": proc.epoch,
        "now_ms": now,
        "peers": peers,
        "suspected": sorted(fd.suspected),
        "tokens_held": len(seg.tokens),
        "replicas": len(seg.replicas),
        "catalogs": len(seg.catalogs),
        "groups": len(proc.group_names()),
        "queues": {
            "disk_async_buffered": len(disk._buffer) + len(disk._deleted_buffer),
            "disk_pending_batches": len(disk._pending) + len(disk._serial_pending),
            "rpc_tasks": len(proc._tasks),
        },
        "backend": type(disk.backend).__name__,
        "stable_keys": disk.stable_keys,
    }
    gate = getattr(server, "admission", None)
    reply["admission"] = None if gate is None else gate.snapshot()
    return reply


def _unreachable_row(addr: str) -> dict:
    return {"status": ERR_UNREACHABLE, "addr": addr, "alive": False}


async def scrape_cell(cluster: Any, via: Any = None,
                      timeout_ms: float = HEALTH_RPC_TIMEOUT_MS) -> list[dict]:
    """Scrape every server in ``cluster``, one health row each.

    ``via`` is the node issuing the RPCs (default: the first agent).
    A fail-stopped or unreachable server yields an ``ERR_UNREACHABLE``
    row instead of stalling the sweep on an RPC timeout: liveness and
    link reachability are checked first, and the timeout path is kept
    only as a backstop for races (a server crashing mid-scrape).
    """
    node = cluster.agents[0] if via is None else via
    rows = []
    for server in cluster.servers:
        if not server.proc.alive or not node.network.reachable(node.addr,
                                                              server.addr):
            rows.append(_unreachable_row(server.addr))
            continue
        try:
            rows.append(await node.call(server.addr, "health",
                                        timeout=timeout_ms, tag="health"))
        except (RpcTimeout, Unreachable):
            rows.append(_unreachable_row(server.addr))
    return rows


def format_health(rows: list[dict]) -> str:
    """Render a scrape as an operator-facing table."""
    lines = [f"{'server':<10} {'state':<12} {'epoch':>5} {'tokens':>7} "
             f"{'replicas':>9} {'queued':>7} {'suspects':<20} backend"]
    for row in rows:
        if row["status"] == ERR_UNREACHABLE:
            lines.append(f"{row['addr']:<10} {'UNREACHABLE':<12}")
            continue
        q = row["queues"]
        suspects = ",".join(row["suspected"]) or "-"
        lines.append(
            f"{row['addr']:<10} {'up':<12} {row['epoch']:>5} "
            f"{row['tokens_held']:>7} {row['replicas']:>9} "
            f"{q['disk_async_buffered'] + q['disk_pending_batches']:>7} "
            f"{suspects:<20} {row['backend']}")
    return "\n".join(lines)
