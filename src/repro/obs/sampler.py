"""Live metrics scraping: periodic virtual-time snapshots.

``Metrics.report()`` only exists after the run ends; benchmarks that
want *trajectories* (queue growth under overload, cache warm-up, heat
migration) need a time series.  :class:`MetricsSampler` posts itself on
the kernel every ``period_ms`` of virtual time and snapshots the
counters plus selected latency reservoirs into a bounded ring the
testbed can read mid-run.

Determinism: a tick only *reads* the metrics and re-posts itself — it
draws no randomness and sends no messages, so arming the sampler never
changes workload behavior, and two same-seed runs with the sampler
armed produce byte-identical series.  Counter keys are iterated in
sorted order so the snapshot dicts themselves are order-stable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable


class MetricsSampler:
    """Snapshot counters/latency percentiles on a virtual-time period."""

    #: Latency reservoirs sampled when the caller names none.
    DEFAULT_LATENCIES = ("pipeline.write_ms", "pipeline.read_ms")

    def __init__(self, metrics: Any, period_ms: float = 250.0,
                 capacity: int = 4096,
                 counter_names: Iterable[str] | None = None,
                 latencies: Iterable[str] | None = None):
        self.metrics = metrics
        self.period_ms = period_ms
        self.capacity = capacity
        #: None means "every counter that exists at tick time".
        self.counter_names = (None if counter_names is None
                              else tuple(counter_names))
        self.latencies = (self.DEFAULT_LATENCIES if latencies is None
                          else tuple(latencies))
        self.samples: deque[dict] = deque(maxlen=capacity)
        self.ticks = 0
        self._kernel: Any = None
        self._running = False

    # -- lifecycle ----------------------------------------------------- #

    def attach(self, kernel: Any) -> None:
        """Start (or, after a cold restart, resume) ticking on ``kernel``.

        The series survives a ``Cluster.restart()``: the new kernel's
        virtual clock restarts at 0, so post-restart samples carry the
        new cell's times — the ``incarnation`` the testbed tracks tells
        readers where the seam is.
        """
        self._kernel = kernel
        self._running = True
        kernel.post(self.period_ms, self._tick)

    def stop(self) -> None:
        """Stop ticking (the already-posted tick becomes a no-op)."""
        self._running = False

    # -- the tick ------------------------------------------------------ #

    def _tick(self) -> None:
        if not self._running:
            return
        kernel = self._kernel
        counters = self.metrics.counters
        names = (sorted(counters) if self.counter_names is None
                 else self.counter_names)
        snap = {name: counters[name] for name in names if name in counters}
        lat: dict[str, dict[str, float]] = {}
        for name in self.latencies:
            stats = self.metrics._latencies.get(name)
            if stats is None or not stats.count:
                continue
            lat[name] = {
                "count": stats.count,
                "mean": stats.mean,
                "p50": stats.percentile(50),
                "p99": stats.percentile(99),
            }
        self.ticks += 1
        self.samples.append({"t_ms": kernel.now, "counters": snap,
                             "latency": lat})
        kernel.post(self.period_ms, self._tick)

    # -- readers ------------------------------------------------------- #

    def series(self, counter: str) -> list[tuple[float, int]]:
        """``(t_ms, value)`` trajectory of one counter."""
        return [(s["t_ms"], s["counters"].get(counter, 0))
                for s in self.samples]

    def latency_series(self, name: str,
                       quantile: str = "p99") -> list[tuple[float, float]]:
        """``(t_ms, quantile)`` trajectory of one latency reservoir."""
        out = []
        for s in self.samples:
            stats = s["latency"].get(name)
            if stats is not None:
                out.append((s["t_ms"], stats[quantile]))
        return out

    def snapshot(self) -> list[dict]:
        """The whole series as a list (for determinism pins)."""
        return list(self.samples)
