"""The observability plane: request tracing, live health/metrics
scraping, and admission control.

Everything here is *opt-in* and costs ~nothing when off: the tracer
follows the witness-chain discipline (one ``is None`` test per hook in
the hot paths), the sampler only exists when armed, and the admission
gate is a ``None`` attribute on servers until the testbed installs one.

- :mod:`repro.obs.tracer` — virtual-time span tracer; trace ids are
  minted at the NFS envelope (the agent side) and ride ``Message``
  metadata across RPCs.  ``build_cluster(tracing=True)``.
- :mod:`repro.obs.sampler` — periodic virtual-time snapshots of the
  counters and latency reservoirs, readable *mid-run*.
- :mod:`repro.obs.admission` — a virtual-time token bucket guarding the
  NFS envelope; overload answers ``ERR_BUSY`` instead of queueing.
- :mod:`repro.obs.health` — assembles the per-server ``health`` RPC
  reply and scrapes a whole cell (dead servers come back as a
  distinguishable ``ERR_UNREACHABLE`` row, not a hung RPC).
- :mod:`repro.obs.loadtest` — the saturation/SLO harness behind
  ``repro loadtest`` and ``BENCH_slo`` (imported directly, not
  re-exported here, because it imports the testbed).
"""

from repro.obs.admission import AdmissionConfig, AdmissionGate
from repro.obs.health import ERR_UNREACHABLE, scrape_cell
from repro.obs.sampler import MetricsSampler
from repro.obs.tracer import Tracer

__all__ = [
    "AdmissionConfig",
    "AdmissionGate",
    "ERR_UNREACHABLE",
    "MetricsSampler",
    "Tracer",
    "scrape_cell",
]
