"""Admission control: a virtual-time token bucket at the NFS envelope.

Without a gate, overload in a closed-loop system shows up as unbounded
queueing — every request is eventually served, but p99 collapses.  The
gate trades a little goodput for bounded latency: requests beyond the
configured rate are answered ``NfsStat.ERR_BUSY`` *immediately* at the
envelope (``DeceitServer._h_nfs``), before any pipeline work, and the
agent retries with deterministic exponential backoff — which paces the
offered load down to roughly the admitted rate.

The bucket refills lazily from the kernel's virtual clock, so it costs
no timer events; when no gate is installed the envelope pays one
``is None`` test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-server token bucket parameters.

    ``rate_per_ms`` is the sustained admitted request rate in requests
    per virtual millisecond; ``burst`` is the bucket depth — how far the
    instantaneous rate may exceed the sustained rate before BUSY.
    """

    rate_per_ms: float
    burst: float = 32.0


class AdmissionGate:
    """One server's token bucket, refilled from virtual time."""

    __slots__ = ("kernel", "config", "metrics", "tokens", "_last",
                 "admitted", "rejected")

    def __init__(self, kernel: Any, config: AdmissionConfig,
                 metrics: Any = None):
        self.kernel = kernel
        self.config = config
        self.metrics = metrics
        self.tokens = config.burst
        self._last = kernel.now
        self.admitted = 0
        self.rejected = 0

    def try_admit(self) -> bool:
        """Spend one token if available; ``False`` means answer BUSY."""
        now = self.kernel.now
        cfg = self.config
        tokens = self.tokens + (now - self._last) * cfg.rate_per_ms
        if tokens > cfg.burst:
            tokens = cfg.burst
        self._last = now
        if tokens >= 1.0:
            self.tokens = tokens - 1.0
            self.admitted += 1
            return True
        self.tokens = tokens
        self.rejected += 1
        return False

    def snapshot(self) -> dict:
        """Read-only view for the ``health`` RPC (no token spend: the
        refill is *peeked*, not stored, so scraping a server's health
        never perturbs its admission decisions)."""
        cfg = self.config
        peek = min(cfg.burst,
                   self.tokens + (self.kernel.now - self._last) * cfg.rate_per_ms)
        return {
            "rate_per_ms": cfg.rate_per_ms,
            "burst": cfg.burst,
            "tokens": round(peek, 3),
            "admitted": self.admitted,
            "rejected": self.rejected,
        }
