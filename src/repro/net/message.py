"""Message envelope for the simulated network."""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any

_msg_ids = itertools.count(1)


class MsgKind(Enum):
    """Transport-level message categories."""

    DATAGRAM = "dgram"
    RPC_REQUEST = "rpc_req"
    RPC_REPLY = "rpc_reply"
    STREAM = "stream"  # bulk data (blast file transfer)


class Message:
    """One message in flight on the simulated network.

    ``size_bytes`` feeds the latency model (bulk transfers cost more);
    ``tag`` is a free-form category string used only for metrics so
    benchmarks can break message counts down by protocol purpose
    (e.g. ``"update"``, ``"token_request"``, ``"stability"``).

    Slotted, hand-rolled class rather than a dataclass: a scale run creates
    millions of these, so construction cost and per-instance memory are on
    the simulator's critical path.  The payload's estimated wire size is
    computed at most once per message (:meth:`payload_bytes`) — callers
    that already know it (RPC replies size themselves by payload; heartbeat
    bursts share one payload) pass it in and skip the walk entirely.
    """

    __slots__ = ("src", "dst", "kind", "payload", "size_bytes", "tag",
                 "msg_id", "_psize", "trace")

    def __init__(self, src: str, dst: str, kind: MsgKind, payload: Any,
                 size_bytes: int = 256, tag: str = "",
                 payload_bytes: int | None = None):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.size_bytes = size_bytes
        self.tag = tag
        self.msg_id = next(_msg_ids)
        self._psize = payload_bytes
        #: request-trace id riding this message (repro.obs.tracer); stamped
        #: by Node.rpc/send only while a tracer is armed, else always None
        self.trace = None

    def payload_bytes(self) -> int:
        """Estimated wire size of the payload; computed once, then cached."""
        size = self._psize
        if size is None:
            size = self._psize = payload_size(self.payload)
        return size

    def __repr__(self) -> str:  # compact for traces
        return (
            f"Message(#{self.msg_id} {self.src}->{self.dst} "
            f"{self.kind.value}{'/' + self.tag if self.tag else ''})"
        )


def payload_size(obj: Any) -> int:
    """Estimated wire size of a payload, in bytes.

    Recursively sums the real length of every bytes/str value plus a
    small fixed charge per scalar — close enough that a 2 MB read reply
    costs 2 MB on the simulated network while a stat reply stays small.
    Used to size RPC *replies* honestly (requests already declare their
    size at the call site) and to feed the ``net.bytes_moved`` counter.
    """
    # Iterative walk with an explicit stack: recursion plus genexpr frames
    # made this the single hottest function in a scale run (an RPC payload
    # is ~a dozen nodes, and every request is walked once).  Exact type
    # checks first — the overwhelmingly common leaves are str/bytes/int —
    # with isinstance fallbacks for subclasses and rarer containers.
    total = 0
    stack = [obj]
    pop = stack.pop
    extend = stack.extend
    while stack:
        o = pop()
        t = type(o)
        if t is str or t is bytes:
            total += len(o)
        elif t is int:
            total += 8
        elif t is dict:
            extend(o.keys())
            extend(o.values())
        elif t is list or t is tuple:
            extend(o)
        elif isinstance(o, (bytes, bytearray, str)):
            total += len(o)
        elif isinstance(o, dict):
            extend(o.keys())
            extend(o.values())
        elif isinstance(o, (list, tuple, set, frozenset)):
            extend(o)
        else:
            # floats, bools, None, enums, and anything exotic
            total += 8
    return total
