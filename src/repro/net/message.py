"""Message envelope for the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

_msg_ids = itertools.count(1)


class MsgKind(Enum):
    """Transport-level message categories."""

    DATAGRAM = "dgram"
    RPC_REQUEST = "rpc_req"
    RPC_REPLY = "rpc_reply"
    STREAM = "stream"  # bulk data (blast file transfer)


@dataclass
class Message:
    """One message in flight on the simulated network.

    ``size_bytes`` feeds the latency model (bulk transfers cost more);
    ``tag`` is a free-form category string used only for metrics so
    benchmarks can break message counts down by protocol purpose
    (e.g. ``"update"``, ``"token_request"``, ``"stability"``).
    """

    src: str
    dst: str
    kind: MsgKind
    payload: Any
    size_bytes: int = 256
    tag: str = ""
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __repr__(self) -> str:  # compact for traces
        return (
            f"Message(#{self.msg_id} {self.src}->{self.dst} "
            f"{self.kind.value}{'/' + self.tag if self.tag else ''})"
        )


def payload_size(obj: Any) -> int:
    """Estimated wire size of a payload, in bytes.

    Recursively sums the real length of every bytes/str value plus a
    small fixed charge per scalar — close enough that a 2 MB read reply
    costs 2 MB on the simulated network while a stat reply stays small.
    Used to size RPC *replies* honestly (requests already declare their
    size at the call site) and to feed the ``net.bytes_moved`` counter.
    """
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, dict):
        return sum(payload_size(k) + payload_size(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_size(v) for v in obj)
    # ints, floats, bools, None, enums, and anything exotic
    return 8
