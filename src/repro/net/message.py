"""Message envelope for the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

_msg_ids = itertools.count(1)


class MsgKind(Enum):
    """Transport-level message categories."""

    DATAGRAM = "dgram"
    RPC_REQUEST = "rpc_req"
    RPC_REPLY = "rpc_reply"
    STREAM = "stream"  # bulk data (blast file transfer)


@dataclass
class Message:
    """One message in flight on the simulated network.

    ``size_bytes`` feeds the latency model (bulk transfers cost more);
    ``tag`` is a free-form category string used only for metrics so
    benchmarks can break message counts down by protocol purpose
    (e.g. ``"update"``, ``"token_request"``, ``"stability"``).
    """

    src: str
    dst: str
    kind: MsgKind
    payload: Any
    size_bytes: int = 256
    tag: str = ""
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __repr__(self) -> str:  # compact for traces
        return (
            f"Message(#{self.msg_id} {self.src}->{self.dst} "
            f"{self.kind.value}{'/' + self.tag if self.tag else ''})"
        )
