"""Simulated network: nodes, datagrams, RPC, latency, loss, and partitions.

This package substitutes for the Ethernet + SunRPC transport of the original
Deceit deployment.  It preserves the properties the paper's design assumes
(§2.3): symmetric communication, message loss, crashes without notification,
and long-term network partitions.

Key classes:

- :class:`~repro.net.network.Network` — the shared medium; owns latency,
  drop, and partition state.
- :class:`~repro.net.network.Node` — base class for anything with an
  address; provides datagrams, RPC with timeouts, crash/recover.
- :class:`~repro.net.latency.LatencyModel` implementations — constant,
  uniform-jitter, and a LAN/WAN profile used by the cell experiments.
"""

from repro.net.latency import ConstantLatency, LanWanLatency, LatencyModel, UniformLatency
from repro.net.message import Message, MsgKind
from repro.net.network import NetConfig, Network, Node, RpcRemoteError

__all__ = [
    "ConstantLatency",
    "LanWanLatency",
    "LatencyModel",
    "Message",
    "MsgKind",
    "NetConfig",
    "Network",
    "Node",
    "RpcRemoteError",
    "UniformLatency",
]
