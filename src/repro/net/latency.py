"""Latency models for the simulated network.

Latencies are in *milliseconds* of virtual time throughout the repository.
The default profile approximates a late-1980s departmental Ethernet: ~2 ms
per small datagram, with bulk data charged per byte on top (the "blast"
file-transfer path of §3.1 exercises this).
"""

from __future__ import annotations

import random
from typing import Protocol


class LatencyModel(Protocol):
    """Strategy interface: virtual-time delay for one message."""

    def delay(self, src: str, dst: str, size_bytes: int, rng: random.Random) -> float:
        """Return the in-flight time for a message of ``size_bytes``."""
        ...


class ConstantLatency:
    """Fixed per-message latency plus a per-byte charge.

    ``per_byte`` defaults to 10 MB/s-equivalent (1e-4 ms/byte), so a 8 KB
    NFS-sized block adds ~0.8 ms — bulk transfers dominate small RPCs, as on
    the paper's hardware.
    """

    def __init__(self, base_ms: float = 2.0, per_byte_ms: float = 1e-4):
        self.base_ms = base_ms
        self.per_byte_ms = per_byte_ms

    def delay(self, src: str, dst: str, size_bytes: int, rng: random.Random) -> float:
        return self.base_ms + size_bytes * self.per_byte_ms


class UniformLatency:
    """Latency uniformly distributed in ``[low_ms, high_ms]`` plus bytes.

    Jitter matters for the ordering protocols: with non-constant latency,
    concurrently sent messages genuinely race, which exercises the ISIS
    delivery-ordering machinery rather than letting FIFO fall out of the
    simulation by accident.
    """

    def __init__(self, low_ms: float = 1.0, high_ms: float = 4.0, per_byte_ms: float = 1e-4):
        if low_ms > high_ms:
            raise ValueError("low_ms must not exceed high_ms")
        self.low_ms = low_ms
        self.high_ms = high_ms
        self.per_byte_ms = per_byte_ms
        self._span = high_ms - low_ms

    def delay(self, src: str, dst: str, size_bytes: int, rng: random.Random) -> float:
        # low + span * random() is random.uniform() spelled out — same
        # expression, same floats, same RNG stream, one frame cheaper on
        # the busiest call site in a scale run
        return (self.low_ms + self._span * rng.random()
                + size_bytes * self.per_byte_ms)


class LanWanLatency:
    """Two-tier profile: cheap within a site cluster, expensive across.

    Node addresses are dotted like the paper's ``foo.cs.mit.edu``: the
    first label is the site, so ``mit.s0`` and ``mit.s1`` talk over the
    LAN while ``mit.s0`` → ``cornell.s0`` pays the WAN latency.  Used by
    the cell experiments (F3), where cells map onto ISIS site clusters
    (§2.2).
    """

    def __init__(
        self,
        lan_ms: float = 2.0,
        wan_ms: float = 40.0,
        per_byte_lan_ms: float = 1e-4,
        per_byte_wan_ms: float = 1e-3,
    ):
        self.lan_ms = lan_ms
        self.wan_ms = wan_ms
        self.per_byte_lan_ms = per_byte_lan_ms
        self.per_byte_wan_ms = per_byte_wan_ms

    @staticmethod
    def site_of(addr: str) -> str:
        """Site prefix of an address (the first dotted label)."""
        return addr.split(".", 1)[0]

    def delay(self, src: str, dst: str, size_bytes: int, rng: random.Random) -> float:
        if self.site_of(src) == self.site_of(dst):
            return self.lan_ms + size_bytes * self.per_byte_lan_ms
        return self.wan_ms + size_bytes * self.per_byte_wan_ms
