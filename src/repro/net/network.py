"""The shared network medium and the addressable-node base class.

Failure model (paper §2.3): machines crash without notification, messages
may be lost in transit, and the network may partition for long periods.
Communication is symmetric — if ``a`` can reach ``b`` then ``b`` can reach
``a`` — which the partition representation guarantees by construction
(partitions are disjoint address sets).

Every send funnels through :meth:`Network.transmit`, which makes it the
simulator's single hottest function at scale.  The fast-path rules it
follows: counter keys are interned per message kind (no per-message
f-strings), payload sizes are computed at most once per message, per-tag
counters are an opt-in (:class:`NetConfig.tag_metrics`), and metric bumps
go straight at the counter dict instead of through a method call.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
import random
from typing import Any, Callable

from repro.errors import RpcTimeout, Unreachable
from repro.metrics import Metrics
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message, MsgKind, payload_size
from repro.sim import Kernel, SimFuture

DEFAULT_RPC_TIMEOUT_MS = 200.0

#: Interned per-kind counter keys — built once, so transmit never
#: constructs a key string per message.
_KIND_COUNTER = {kind: f"net.msgs.{kind.value}" for kind in MsgKind}


@dataclass
class NetConfig:
    """Tunable network accounting knobs.

    ``tag_metrics`` arms the per-tag message counters
    (``net.msgs.tag.<tag>``).  They are an opt-in because the key is built
    from the tag per message — benchmarks that break counts down by
    protocol purpose turn them on; scale runs leave them off and keep
    ``transmit()`` free of string building.
    """

    tag_metrics: bool = False


class RpcRemoteError(Exception):
    """An RPC handler raised on the remote side; carries the message text."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_message = message


class Network:
    """Simulated broadcast medium connecting :class:`Node` instances.

    One instance per simulation.  Owns the latency model, the drop
    probability, and the current partition.  All sends funnel through
    :meth:`transmit`, which is also where message metrics are counted.
    """

    def __init__(
        self,
        kernel: Kernel,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        seed: int = 0,
        metrics: Metrics | None = None,
        config: NetConfig | None = None,
    ):
        self.kernel = kernel
        self.latency = latency or ConstantLatency()
        self.drop_probability = drop_probability
        self.rng = random.Random(seed)
        self.metrics = metrics or Metrics()
        self.config = config or NetConfig()
        self.nodes: dict[str, Node] = {}
        self._partition_of: dict[str, int] = {}  # addr -> group id; absent = group 0
        self._partitioned = False
        self.trace: list[Message] | None = None  # set to [] to record all sends

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    def register(self, node: "Node") -> None:
        """Attach a node to the medium (addresses must be unique)."""
        if node.addr in self.nodes:
            raise ValueError(f"duplicate address {node.addr!r}")
        self.nodes[node.addr] = node

    def node(self, addr: str) -> "Node":
        """Look up a node by address."""
        return self.nodes[addr]

    # ------------------------------------------------------------------ #
    # partitions
    # ------------------------------------------------------------------ #

    def partition(self, groups: list[set[str]]) -> None:
        """Split the network into the given disjoint address groups.

        Addresses not mentioned in any group form one implicit extra group.
        Messages cross group boundaries only after :meth:`heal`.
        """
        seen: set[str] = set()
        for group in groups:
            overlap = seen & group
            if overlap:
                raise ValueError(f"addresses in two partitions: {overlap}")
            seen |= group
        self._partition_of = {}
        for gid, group in enumerate(groups, start=1):
            for addr in group:
                self._partition_of[addr] = gid
        self._partitioned = True
        self.metrics.incr("net.partitions")

    def heal(self) -> None:
        """Remove the partition; full connectivity resumes."""
        self._partition_of = {}
        self._partitioned = False
        self.metrics.incr("net.heals")

    @property
    def partitioned(self) -> bool:
        """Whether a partition is currently in force."""
        return self._partitioned

    def reachable(self, src: str, dst: str) -> bool:
        """True when a message sent now from ``src`` would reach ``dst``.

        Requires both endpoints alive and in the same partition group.
        Symmetric by construction.
        """
        a = self.nodes.get(src)
        b = self.nodes.get(dst)
        if a is None or b is None or not a.alive or not b.alive:
            return False
        if not self._partitioned:
            return True
        return self._partition_of.get(src, 0) == self._partition_of.get(dst, 0)

    # ------------------------------------------------------------------ #
    # transmission
    # ------------------------------------------------------------------ #

    def transmit(self, msg: Message) -> None:
        """Send ``msg``; it is delivered, dropped, or silently lost to a
        partition after the modeled latency."""
        counters = self.metrics.counters
        counters["net.msgs"] += 1
        counters[_KIND_COUNTER[msg.kind]] += 1
        if msg.tag and self.config.tag_metrics:
            counters["net.msgs.tag." + msg.tag] += 1
        counters["net.bytes"] += msg.size_bytes
        # actual payload bytes, independent of the declared wire size — the
        # honest bandwidth figure benchmarks report (a 2 MB read moves 2 MB
        # here whatever the caller declared)
        counters["net.bytes_moved"] += msg.payload_bytes()
        if self.trace is not None:
            self.trace.append(msg)
        if self.drop_probability and self.rng.random() < self.drop_probability:
            counters["net.dropped"] += 1
            return
        delay = self.latency.delay(msg.src, msg.dst, msg.size_bytes, self.rng)
        tracer = self.kernel._tracer
        if tracer is not None and msg.trace is not None:
            now = self.kernel.now
            tracer.record(msg.trace, now, now + delay, "net",
                          msg.tag or msg.kind.value)
        self.kernel.post(delay, self._arrive, msg)

    def multicast(self, src: str, dsts: list[str], payload: Any,
                  size_bytes: int = 256, tag: str = "") -> None:
        """Send one datagram payload to many destinations.

        The fast path for periodic fan-out (heartbeats: every server to
        every peer, forever): the payload object and its computed wire size
        are shared across the burst and metrics are bumped once per burst
        instead of once per message.  Per-destination drop and latency
        draws happen in the same order a loop of :meth:`transmit` calls
        would make, so seeded runs stay byte-identical either way.
        """
        if not dsts:
            return
        n = len(dsts)
        psize = payload_size(payload)
        counters = self.metrics.counters
        counters["net.msgs"] += n
        counters[_KIND_COUNTER[MsgKind.DATAGRAM]] += n
        if tag and self.config.tag_metrics:
            counters["net.msgs.tag." + tag] += n
        counters["net.bytes"] += size_bytes * n
        counters["net.bytes_moved"] += psize * n
        trace = self.trace
        drop = self.drop_probability
        rng = self.rng
        latency_delay = self.latency.delay
        post = self.kernel.post
        arrive = self._arrive
        for dst in dsts:
            msg = Message(src, dst, MsgKind.DATAGRAM, payload, size_bytes,
                          tag, payload_bytes=psize)
            if trace is not None:
                trace.append(msg)
            if drop and rng.random() < drop:
                counters["net.dropped"] += 1
                continue
            post(latency_delay(src, dst, size_bytes, rng), arrive, msg)

    def _arrive(self, msg: Message) -> None:
        # Reachability is evaluated at arrival time: a partition or crash
        # occurring while the message is in flight loses the message, which
        # matches datagram semantics.  (This is reachable() unrolled — one
        # Python frame per delivered message is measurable at scale.)
        nodes = self.nodes
        src, dst = msg.src, msg.dst
        a = nodes.get(src)
        b = nodes.get(dst)
        if (a is None or b is None or not a.alive or not b.alive
                or (self._partitioned
                    and self._partition_of.get(src, 0)
                    != self._partition_of.get(dst, 0))):
            self.metrics.counters["net.lost_unreachable"] += 1
            return
        b._deliver(msg)


class Node:
    """Base class for every addressable participant in the simulation.

    Provides datagram send, request/reply RPC with timeouts, and
    crash/recover with fail-stop volatile-state semantics: a crash cancels
    all in-flight tasks spawned through :meth:`spawn` and bumps an epoch so
    stale replies are ignored; subclasses override :meth:`on_crash` /
    :meth:`on_recover` to model volatile-state loss.
    """

    def __init__(self, network: Network, addr: str):
        self.network = network
        self.addr = addr
        self.kernel = network.kernel
        self.alive = True
        self.epoch = 0  # bumped on every crash; stale work is discarded
        self._rpc_seq = itertools.count(1)
        self._pending_rpcs: dict[int, SimFuture] = {}
        # insertion-ordered task registry (dict-as-set): reaping a finished
        # task is O(1) instead of the quadratic list.remove() churn a busy
        # server would otherwise pay
        self._tasks: dict[Any, None] = {}
        self._handlers: dict[str, Callable] = {}
        network.register(self)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        """Fail-stop: drop volatile state, kill in-flight work."""
        if not self.alive:
            return
        self.alive = False
        self.epoch += 1
        tasks, self._tasks = self._tasks, {}
        for task in tasks:
            task.cancel()
        pending, self._pending_rpcs = self._pending_rpcs, {}
        for _req_id, fut in sorted(pending.items()):
            fut.try_set_exception(Unreachable(f"{self.addr} crashed with RPC pending"))
        self.network.metrics.incr("node.crashes")
        self.on_crash()

    def recover(self) -> None:
        """Restart after a crash; volatile state was lost, stable state kept."""
        if self.alive:
            return
        self.alive = True
        self.network.metrics.incr("node.recoveries")
        self.on_recover()

    def on_crash(self) -> None:
        """Hook: subclasses discard volatile state here."""

    def on_recover(self) -> None:
        """Hook: subclasses run their recovery protocol here."""

    def spawn(self, coro, name: str = ""):
        """Spawn a task tied to this node's life (cancelled on crash)."""
        task = self.kernel.spawn(coro, name=name or f"{self.addr}:task")
        self._tasks[task] = None
        task.add_done_callback(self._reap)
        return task

    def _reap(self, task) -> None:
        self._tasks.pop(task, None)

    # ------------------------------------------------------------------ #
    # datagrams
    # ------------------------------------------------------------------ #

    def send(self, dst: str, payload: Any, size_bytes: int = 256,
             tag: str = "", payload_bytes: int | None = None) -> None:
        """Fire-and-forget datagram.

        ``payload_bytes`` lets a caller that already knows the payload's
        wire size (or reuses one payload many times) skip the recursive
        size walk in :meth:`Network.transmit`.
        """
        if not self.alive:
            return
        msg = Message(self.addr, dst, MsgKind.DATAGRAM, payload, size_bytes,
                      tag, payload_bytes=payload_bytes)
        kernel = self.kernel
        if kernel._tracer is not None and kernel._current is not None:
            msg.trace = kernel._current.trace
        self.network.transmit(msg)

    def multicast(self, dsts: list[str], payload: Any, size_bytes: int = 256,
                  tag: str = "") -> None:
        """Fire-and-forget datagram to many destinations (shared payload)."""
        if not self.alive:
            return
        self.network.multicast(self.addr, dsts, payload, size_bytes, tag)

    # ------------------------------------------------------------------ #
    # RPC
    # ------------------------------------------------------------------ #

    def register_handler(self, method: str, fn: Callable) -> None:
        """Register an async RPC handler: ``async fn(src_addr, **kwargs)``."""
        self._handlers[method] = fn

    def rpc(
        self,
        dst: str,
        method: str,
        args: dict[str, Any] | None = None,
        timeout: float = DEFAULT_RPC_TIMEOUT_MS,
        size_bytes: int = 256,
        tag: str = "",
    ) -> SimFuture:
        """Invoke ``method`` on node ``dst``; future resolves with the reply.

        Fails with :class:`RpcTimeout` when no reply arrives in ``timeout``
        virtual ms (covering loss, crash, and partition uniformly — the
        caller cannot distinguish them, per the failure model), or with
        :class:`RpcRemoteError` when the remote handler raised.
        """
        out = self.kernel.create_future()
        if not self.alive:
            out.set_exception(Unreachable(f"{self.addr} is down"))
            return out
        req_id = next(self._rpc_seq)
        self._pending_rpcs[req_id] = out
        payload = {"req_id": req_id, "method": method, "args": args or {}}
        msg = Message(self.addr, dst, MsgKind.RPC_REQUEST, payload,
                      size_bytes, tag or method)
        kernel = self.kernel
        if kernel._tracer is not None and kernel._current is not None:
            msg.trace = kernel._current.trace
        self.network.transmit(msg)

        def _expire() -> None:
            if self._pending_rpcs.pop(req_id, None) is not None:
                out.try_set_exception(
                    RpcTimeout(f"rpc {method} to {dst} timed out after {timeout}ms")
                )

        handle = self.kernel.schedule(timeout, _expire)
        out.add_done_callback(lambda _f: handle.cancel())
        return out

    async def call(self, dst: str, method: str, timeout: float = DEFAULT_RPC_TIMEOUT_MS,
                   size_bytes: int = 256, tag: str = "", **kwargs: Any) -> Any:
        """``await``-style RPC convenience wrapper around :meth:`rpc`."""
        return await self.rpc(dst, method, kwargs, timeout=timeout,
                              size_bytes=size_bytes, tag=tag)

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #

    def _deliver(self, msg: Message) -> None:
        if not self.alive:
            return
        kind = msg.kind
        if kind is MsgKind.RPC_REQUEST:
            self.spawn(self._serve_rpc(msg), name=f"{self.addr}:rpc:{msg.payload['method']}")
        elif kind is MsgKind.RPC_REPLY:
            self._accept_reply(msg)
        else:
            self.on_message(msg)

    async def _serve_rpc(self, msg: Message) -> None:
        payload = msg.payload
        kernel = self.kernel
        tracer = kernel._tracer
        if tracer is not None:
            # adopt the caller's trace onto the serving task (we are inside
            # its first step), so pipeline/disk work done on behalf of this
            # request — including spawned children — stays attributed
            served_since = kernel.now
            if msg.trace is not None and kernel._current is not None:
                kernel._current.trace = msg.trace
        handler = self._handlers.get(payload["method"])
        reply: dict[str, Any]
        if handler is None:
            reply = {
                "req_id": payload["req_id"],
                "error": ("NoSuchMethod", payload["method"]),
            }
        else:
            epoch = self.epoch
            try:
                result = await handler(msg.src, **payload["args"])
                reply = {"req_id": payload["req_id"], "result": result}
            except Exception as exc:  # surfaces to caller as RpcRemoteError
                reply = {
                    "req_id": payload["req_id"],
                    "error": (type(exc).__name__, str(exc)),
                }
            if self.epoch != epoch or not self.alive:
                return  # crashed while serving: reply dies with us
        # replies are sized by their payload: a 2 MB read reply pays 2 MB
        # of transfer latency, a stat reply the minimum — without this,
        # bulk reads looked free and striping could not be measured
        # honestly.  Sized once here; transmit reuses the cached figure.
        psize = payload_size(reply)
        reply_msg = Message(self.addr, msg.src, MsgKind.RPC_REPLY, reply,
                            max(256, psize), tag=payload["method"] + ".reply",
                            payload_bytes=psize)
        if tracer is not None and msg.trace is not None:
            tracer.record(msg.trace, served_since, kernel.now, "rpc",
                          payload["method"])
            reply_msg.trace = msg.trace
        self.network.transmit(reply_msg)

    def _accept_reply(self, msg: Message) -> None:
        fut = self._pending_rpcs.pop(msg.payload["req_id"], None)
        if fut is None:
            return  # late reply after timeout/crash: drop
        if "error" in msg.payload:
            error_type, text = msg.payload["error"]
            fut.try_set_exception(RpcRemoteError(error_type, text))
        else:
            fut.try_set_result(msg.payload["result"])

    def on_message(self, msg: Message) -> None:
        """Hook for non-RPC datagrams; default drops them."""

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.addr} {state}>"
