"""Cooperative synchronization primitives on the simulation kernel.

Atomicity contract (what ``racelint`` / ``ysan`` assume of this layer):

- :class:`Lock` is FIFO and hand-off: ``release()`` passes ownership to
  the longest-waiting *live* acquirer without dropping the lock in
  between.  A waiter that gave up (``wait_for`` timeout — the kernel does
  **not** cancel the inner acquire — or a crashed task) must either be
  skipped because its future is already done, or renounced explicitly via
  :meth:`Lock.abandon`; otherwise its pending future would soak up a
  grant nobody is awaiting and wedge the lock forever.
- :class:`Event` wakeups are **edge-triggered one-shots**: ``set()``
  irrevocably resolves every already-registered waiter, even if
  ``clear()`` runs before the woken tasks actually resume.  A woken
  waiter must therefore not assume ``is_set`` still holds when it runs.
"""

from __future__ import annotations

from collections import deque

from repro.sim.kernel import Kernel, SimFuture, SimTimeoutError


class Lock:
    """FIFO mutual-exclusion lock for tasks.

    Usage::

        await lock.acquire()
        try: ...
        finally: lock.release()

    With a timeout (the acquire future must be renounced on failure,
    because ``wait_for`` does not cancel the underlying acquire)::

        fut = lock.acquire()
        try:
            await kernel.wait_for(fut, timeout)
        except SimTimeoutError:
            lock.abandon(fut)
            raise
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._locked = False
        self._waiters: deque[SimFuture] = deque()

    def acquire(self) -> SimFuture:
        """Future resolving once the lock is held by the caller."""
        fut = self.kernel.create_future()
        if not self._locked:
            self._locked = True
            fut.set_result(None)
        else:
            self._waiters.append(fut)
        return fut

    def release(self) -> None:
        """Release; hands off to the longest-waiting *live* acquirer.

        Waiter futures that are already done — abandoned via
        :meth:`abandon`, or failed by a node crash — are skipped: granting
        to one would "give" the lock to a task that stopped listening,
        wedging every later acquirer behind a phantom owner.
        """
        if not self._locked:
            raise RuntimeError("release of unheld lock")
        waiters = self._waiters
        while waiters:
            if waiters.popleft().try_set_result(None):
                return  # ownership handed off; lock stays held
        self._locked = False

    def abandon(self, fut: SimFuture) -> None:
        """Renounce a pending :meth:`acquire` future (idempotent).

        Call this when the would-be owner gives up on ``fut`` — typically
        after a ``wait_for`` timeout, which leaves the acquire future
        pending in the waiter queue.  If the grant already landed (the
        lock was handed to ``fut`` between the timeout firing and this
        call), the lock is released on the abandoner's behalf; otherwise
        the future is failed in place so :meth:`release` skips it.
        """
        if fut.done():
            if fut.exception() is None:
                # the grant raced the abandonment: we own the lock now,
                # and nobody is awaiting the future — pass it on
                self.release()
            return
        fut.set_exception(SimTimeoutError("lock acquire abandoned"))

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._locked


class Event:
    """Resettable broadcast event with **one-shot wakeups**.

    ``set()`` resolves every waiter registered so far; those wakeups are
    irrevocable.  ``clear()`` only re-arms the event for *future*
    :meth:`wait` calls — it does not (and cannot) revoke wakeups already
    granted, so a task woken by ``set()`` may observe ``is_set == False``
    by the time it resumes if an intervening ``clear()`` ran.  Code that
    needs the condition to still hold must re-check it after waking
    (``while not ev.is_set: await ev.wait()``).
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._set = False
        self._waiters: list[SimFuture] = []

    def wait(self) -> SimFuture:
        """Future resolving when (or immediately if) the event is set."""
        fut = self.kernel.create_future()
        if self._set:
            fut.set_result(None)
        else:
            self._waiters.append(fut)
        return fut

    def set(self) -> None:
        """Wake all waiters; subsequent waits return immediately."""
        self._set = True
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            fut.try_set_result(None)

    def clear(self) -> None:
        """Re-arm the event (wakeups already granted stay granted)."""
        self._set = False

    @property
    def is_set(self) -> bool:
        """Current state."""
        return self._set
