"""Cooperative synchronization primitives on the simulation kernel."""

from __future__ import annotations

from collections import deque

from repro.sim.kernel import Kernel, SimFuture


class Lock:
    """FIFO mutual-exclusion lock for tasks.

    Usage::

        await lock.acquire()
        try: ...
        finally: lock.release()
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._locked = False
        self._waiters: deque[SimFuture] = deque()

    def acquire(self) -> SimFuture:
        """Future resolving once the lock is held by the caller."""
        fut = self.kernel.create_future()
        if not self._locked:
            self._locked = True
            fut.set_result(None)
        else:
            self._waiters.append(fut)
        return fut

    def release(self) -> None:
        """Release; wakes the longest-waiting acquirer, if any."""
        if not self._locked:
            raise RuntimeError("release of unheld lock")
        if self._waiters:
            self._waiters.popleft().try_set_result(None)
        else:
            self._locked = False

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._locked


class Event:
    """One-shot (resettable) broadcast event."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._set = False
        self._waiters: list[SimFuture] = []

    def wait(self) -> SimFuture:
        """Future resolving when (or immediately if) the event is set."""
        fut = self.kernel.create_future()
        if self._set:
            fut.set_result(None)
        else:
            self._waiters.append(fut)
        return fut

    def set(self) -> None:
        """Wake all waiters; subsequent waits return immediately."""
        self._set = True
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            fut.try_set_result(None)

    def clear(self) -> None:
        """Re-arm the event."""
        self._set = False

    @property
    def is_set(self) -> bool:
        """Current state."""
        return self._set
