"""Virtual-time event loop with awaitable futures and coroutine tasks.

The kernel is a classic discrete-event simulator: a priority queue of
``(time, sequence, event)`` entries and a virtual clock that jumps from
event to event.  On top of that sits a minimal coroutine runtime so protocol
code can be written with ``async``/``await`` instead of callback chains.

Determinism: events at equal virtual times fire in scheduling order (a
monotonically increasing sequence number breaks ties), so any simulation
driven by seeded RNGs is exactly reproducible.

Scale fast paths (the hot loops every simulated operation funnels through):

- the heap holds plain ``(when, seq, event)`` tuples, so ordering is
  resolved by C-level tuple comparison instead of a Python ``__lt__``;
- zero-delay events (coroutine steps, future callbacks) go through a FIFO
  deque and never touch the heap — ``(when, seq)`` order is preserved by
  merging the two sorted streams at pop time;
- cancelled events (one RPC timeout per RPC, nearly always cancelled) are
  counted, and the queue is compacted once they dominate it, instead of
  letting dead timers linger until their deadline;
- :meth:`run` drains same-timestamp batches without re-checking the
  ``until`` bound per event, and :meth:`run_until_complete` drives the
  loop inline rather than paying a ``run(max_events=1)`` call per event.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from collections import deque
from collections.abc import Awaitable, Callable, Coroutine, Iterable
from typing import Any

# A discrete-event simulation legitimately stops with tasks scheduled but
# never started; their coroutine objects are then collected un-run.  That
# teardown case is handled *scoped* to kernel-owned coroutines — rather than
# with a module-wide message filter — so a genuinely dropped coroutine in
# user code (one never handed to spawn()) still warns as CPython intends:
#
# 1. Task.__del__ closes an un-started coroutine quietly (covers plain
#    refcount death, where the Task is always finalized first);
# 2. Kernel.shutdown() drains the queue, closing pending task coroutines;
# 3. for reference *cycles* (kernel -> queue -> task -> coroutine -> app ->
#    kernel) the GC may finalize the coroutine before its Task, so the
#    CPython warning hook is wrapped to skip exactly the coroutines a Task
#    adopted.  Membership is tracked by id (the GC clears weak references
#    before it runs finalizers, so a WeakSet would already be empty when the
#    hook fires); ids are discarded the moment a task starts, is closed, or
#    its warning is suppressed, so an address reused by a user coroutine is
#    not silenced.
_adopted_coro_ids: set[int] = set()


def _adopt(coro) -> None:
    _adopted_coro_ids.add(id(coro))


def _unadopt(coro) -> None:
    _adopted_coro_ids.discard(id(coro))


def _install_scoped_unawaited_filter() -> None:
    original = getattr(warnings, "_warn_unawaited_coroutine", None)
    if original is None or getattr(original, "_repro_scoped", False):
        return  # unknown interpreter layout, or already installed

    def _scoped(coro):
        if id(coro) in _adopted_coro_ids:
            # adopted by a Kernel Task the simulation never reached
            _adopted_coro_ids.discard(id(coro))
            return
        original(coro)

    _scoped._repro_scoped = True  # type: ignore[attr-defined]
    warnings._warn_unawaited_coroutine = _scoped  # type: ignore[attr-defined]


_install_scoped_unawaited_filter()


class SimTimeoutError(Exception):
    """Raised when :meth:`Kernel.wait_for` exceeds its timeout."""


class TaskCancelled(Exception):
    """Raised inside a coroutine whose :class:`Task` was cancelled."""


class SimFuture:
    """A single-assignment result container, awaitable from a :class:`Task`.

    Mirrors the essential surface of :class:`asyncio.Future` but runs on the
    simulation kernel's virtual clock.
    """

    __slots__ = ("kernel", "_done", "_result", "_exception", "_callbacks")

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []

    def done(self) -> bool:
        """Return ``True`` once a result or exception has been set."""
        return self._done

    def result(self) -> Any:
        """Return the stored result, raising the stored exception if any."""
        if not self._done:
            raise RuntimeError("SimFuture result read before completion")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> BaseException | None:
        """Return the stored exception (or ``None``)."""
        if not self._done:
            raise RuntimeError("SimFuture exception read before completion")
        return self._exception

    def set_result(self, value: Any = None) -> None:
        """Complete the future successfully with ``value``."""
        if self._done:
            raise RuntimeError("SimFuture already completed")
        self._done = True
        self._result = value
        self._fire_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        """Complete the future with an exception."""
        if self._done:
            raise RuntimeError("SimFuture already completed")
        self._done = True
        self._exception = exc
        self._fire_callbacks()

    def try_set_result(self, value: Any = None) -> bool:
        """Set a result unless the future is already done; report success."""
        if self._done:
            return False
        self.set_result(value)
        return True

    def try_set_exception(self, exc: BaseException) -> bool:
        """Set an exception unless the future is already done."""
        if self._done:
            return False
        self.set_exception(exc)
        return True

    def add_done_callback(self, fn: Callable[["SimFuture"], None]) -> None:
        """Run ``fn(self)`` when the future completes (immediately if done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __await__(self):
        if not self._done:
            yield self
        return self.result()


class Task(SimFuture):
    """A coroutine driven by the kernel; completes with the coroutine's return.

    Tasks are themselves futures, so one coroutine can ``await`` another via
    ``await kernel.spawn(other())``.
    """

    __slots__ = ("_coro", "_cancelled", "_started", "name", "trace")

    def __init__(self, kernel: "Kernel", coro: Coroutine, name: str = ""):
        super().__init__(kernel)
        self._coro = coro
        self._cancelled = False
        self._started = False
        self.name = name or getattr(coro, "__name__", "task")
        #: request-trace id this task runs on behalf of (repro.obs.tracer);
        #: inherited by spawned children while a tracer is armed
        self.trace: Any = None
        _adopt(coro)

    def cancel(self) -> bool:
        """Request cancellation; returns ``False`` if already done."""
        if self._done:
            return False
        self._cancelled = True
        if not self._started:
            # Never entered the coroutine: close it outright so it cannot
            # leak as a "never awaited" object at interpreter teardown.
            self._coro.close()
            _unadopt(self._coro)
            self.try_set_exception(TaskCancelled())
            return True
        self.kernel._schedule_now(self._step, None)
        return True

    def __del__(self) -> None:
        # A task the simulation ended before ever stepping holds a coroutine
        # that was legitimately scheduled, just never reached — close it
        # quietly instead of letting GC flag it as a never-awaited bug.
        if not self._started and not self._done:
            try:
                self._coro.close()
            except Exception:
                pass
        _unadopt(self._coro)

    def _step(self, wakeup_value: Any) -> None:
        if self._done:
            return
        if not self._started:
            _unadopt(self._coro)  # running now; no unawaited risk remains
        self._started = True
        # yield sanitizer (repro.analysis.ysan): attribute shared-state
        # accesses made during this step to this task.  Off by default;
        # the fast path pays one attribute load and `is None` test.
        kernel = self.kernel
        ysan = kernel._ysan
        if ysan is not None:
            ysan.begin_step(self)
        # request tracer (repro.obs.tracer): expose the running task so
        # trace ids propagate to spawned children and recorded spans.
        # Same off-by-default cost: one attribute load and `is None` test.
        if kernel._tracer is not None:
            kernel._current = self
        try:
            try:
                if self._cancelled:
                    awaited = self._coro.throw(TaskCancelled())
                elif isinstance(wakeup_value, BaseException):
                    awaited = self._coro.throw(wakeup_value)
                else:
                    awaited = self._coro.send(wakeup_value)
            except StopIteration as stop:
                self.try_set_result(stop.value)
                return
            except TaskCancelled as exc:
                self.try_set_exception(exc)
                return
            except BaseException as exc:  # propagate to awaiters
                self.try_set_exception(exc)
                return
            if not isinstance(awaited, SimFuture):
                self.try_set_exception(
                    TypeError(f"task awaited a non-SimFuture: {awaited!r}")
                )
                return
            awaited.add_done_callback(self._resume_from)
        finally:
            if kernel._tracer is not None:
                kernel._current = None
            if ysan is not None:
                ysan.end_step()

    def _resume_from(self, fut: SimFuture) -> None:
        if self._done:
            return
        exc = fut._exception
        if exc is not None:
            self.kernel._schedule_now(self._step, exc)
        else:
            self.kernel._schedule_now(self._step, fut._result)


class _Event:
    __slots__ = ("when", "seq", "fn", "args", "cancelled")

    def __init__(self, when: float, seq: int, fn: Callable, args: tuple):
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False


class EventHandle:
    """Handle returned by :meth:`Kernel.schedule`; supports cancellation."""

    __slots__ = ("_event", "_kernel")

    def __init__(self, event: _Event, kernel: "Kernel"):
        self._event = event
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the scheduled callback from firing (idempotent).

        The event stays queued but dead; the kernel counts dead entries and
        compacts the queue when they dominate it (an RPC-heavy run otherwise
        drags a heap full of never-to-fire timeout timers)."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            event.fn = None
            event.args = ()
            kernel = self._kernel
            kernel._cancelled += 1
            if (kernel._cancelled >= kernel.COMPACT_MIN_DEAD
                    and kernel._cancelled * 2 >= len(kernel._queue)):
                kernel._compact()

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class Kernel:
    """The discrete-event simulation loop.

    All components of the reproduction share one kernel instance; virtual
    time (:attr:`now`) only advances inside :meth:`run` /
    :meth:`run_until_complete`.
    """

    #: Compaction trigger: rebuild the heap once at least this many events
    #: are dead *and* they make up half the queue.  Amortized O(1) per
    #: cancellation; keeps pathological timer churn from growing the heap.
    COMPACT_MIN_DEAD = 512

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, _Event]] = []
        #: zero-delay events, in (when, seq) order by construction — `now`
        #: never decreases and seq only grows, so appends stay sorted
        self._fifo: deque[_Event] = deque()
        #: how zero-delay events enter the fifo.  Default: the deque's own
        #: append (the fifo's identity never changes — see _compact — so
        #: binding it once is safe).  `set_perturbation` swaps in the
        #: tie-break shuffler; the hot path itself stays branch-free.
        self._fifo_push: Callable[[_Event], None] = self._fifo.append
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled = 0  # dead events still sitting in queue or fifo
        #: witness hash chain (repro.analysis.witness); None = off, and the
        #: dispatch loops pay exactly one `is None` test per event
        self._witness: Any = None
        #: determinism guard (repro.analysis.guard) engaged around dispatch
        self._det_guard: Any = None
        #: yield sanitizer (repro.analysis.ysan); None = off, and Task._step
        #: pays exactly one `is None` test per step
        self._ysan: Any = None
        #: schedule-perturbation RNG (repro racecheck); None = off
        self._perturb: Any = None
        #: request tracer (repro.obs.tracer); None = off, and every hook —
        #: task steps, spawn, message send — pays one `is None` test
        self._tracer: Any = None
        #: the task currently being stepped; maintained only while a
        #: tracer is armed (the only consumer of task identity mid-step)
        self._current: Task | None = None

    def set_witness(self, witness: Any) -> None:
        """Attach (or detach, with ``None``) a per-event witness recorder.

        The recorder's ``fold_event(when, seq, fn, args)`` is called after
        every dispatched event.  Off by default; attach before running.
        """
        self._witness = witness

    def set_det_guard(self, guard: Any) -> None:
        """Attach a :class:`~repro.analysis.guard.DeterminismGuard`.

        While :meth:`run` / :meth:`run_until_complete` dispatch events the
        guard is engaged, so patched global entropy sources raise.
        """
        self._det_guard = guard

    def set_ysan(self, sanitizer: Any) -> None:
        """Attach (or detach, with ``None``) a yield sanitizer.

        The sanitizer's ``begin_step(task)`` / ``end_step()`` bracket every
        task step, so shared-state accesses (through its tracked
        containers) are attributed to the running task and to yield-point
        crossings.  Off by default.
        """
        self._ysan = sanitizer
        if sanitizer is not None:
            sanitizer.attach(self)

    def set_tracer(self, tracer: Any) -> None:
        """Attach (or detach, with ``None``) a request-span tracer.

        While armed, the kernel tracks the currently-stepping task so
        trace ids flow from parent to spawned child and hooks across the
        stack (network, pipeline, disk) can attribute their spans via
        :meth:`current_trace`.  Off by default — the hooks cost one
        attribute load and ``is None`` test each, the witness-chain
        discipline.  Arming or disarming never changes event order, so
        same-seed runs stay byte-identical either way.
        """
        self._tracer = tracer
        if tracer is None:
            self._current = None

    def current_trace(self) -> Any:
        """Trace id of the task being stepped right now (``None`` from
        plain callbacks or when no tracer is armed)."""
        task = self._current
        return None if task is None else task.trace

    def set_perturbation(self, rng: Any) -> None:
        """Arm (or disarm, with ``None``) seeded schedule perturbation.

        With an ``rng`` (a dedicated seeded ``random.Random`` — never the
        workload/network stream), every zero-delay event is inserted at an
        rng-chosen position among the queued events that share its virtual
        timestamp, instead of appended.  This shuffles exactly the
        tie-breaking that the FIFO's sequence numbers otherwise fix —
        virtual-time ordering is untouched — so a perturbed run explores a
        different but *legal* interleaving, reproducible from the rng's
        seed.  Disarmed (the default), scheduling goes through the plain
        deque append and runs are byte-identical to an unperturbed kernel.
        """
        self._perturb = rng
        self._fifo_push = (self._fifo.append if rng is None
                           else self._perturbed_push)

    def _perturbed_push(self, event: _Event) -> None:
        """Insert a zero-delay event at a random same-timestamp position.

        Only the trailing run of fifo entries sharing ``event.when`` is a
        legal insertion window (the fifo is sorted by ``when``; earlier
        timestamps must stay ahead).  During normal dispatch the whole
        fifo shares the current timestamp, so this is a full shuffle of
        the pending zero-delay batch.
        """
        fifo = self._fifo
        n = 0
        for queued in reversed(fifo):
            if queued.when != event.when:
                break
            n += 1
        pos = self._perturb.randint(0, n)
        if pos == n:
            fifo.append(event)
        else:
            fifo.insert(len(fifo) - n + pos, event)

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, fn: Callable, *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = _Event(self.now + delay, next(self._seq), fn, args)
        if delay == 0:
            self._fifo_push(event)
        else:
            heapq.heappush(self._queue, (event.when, event.seq, event))
        return EventHandle(event, self)

    def call_at(self, when: float, fn: Callable, *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        event = _Event(when, next(self._seq), fn, args)
        if when == self.now:
            self._fifo_push(event)
        else:
            heapq.heappush(self._queue, (when, event.seq, event))
        return EventHandle(event, self)

    def post(self, delay: float, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle.

        The hot paths (message arrival, timer-free protocol steps) never
        cancel, so they skip the handle allocation entirely.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = _Event(self.now + delay, next(self._seq), fn, args)
        if delay == 0:
            self._fifo_push(event)
        else:
            heapq.heappush(self._queue, (event.when, event.seq, event))

    def _schedule_now(self, fn: Callable, *args: Any) -> None:
        self._fifo_push(_Event(self.now, next(self._seq), fn, args))

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (both queues).

        Rebuilds *in place*: the run loops cache references to the queue
        and fifo containers, so their identities must never change.
        """
        self._queue[:] = [entry for entry in self._queue
                          if not entry[2].cancelled]
        heapq.heapify(self._queue)
        if any(event.cancelled for event in self._fifo):
            live = [e for e in self._fifo if not e.cancelled]
            self._fifo.clear()
            self._fifo.extend(live)
        self._cancelled = 0

    # ------------------------------------------------------------------ #
    # coroutine layer
    # ------------------------------------------------------------------ #

    def spawn(self, coro: Coroutine, name: str = "") -> Task:
        """Start driving a coroutine; returns an awaitable :class:`Task`."""
        task = Task(self, coro, name=name)
        if self._tracer is not None and self._current is not None:
            task.trace = self._current.trace
        self._schedule_now(task._step, None)
        return task

    def create_future(self) -> SimFuture:
        """Return a fresh unresolved :class:`SimFuture`."""
        return SimFuture(self)

    def sleep(self, delay: float) -> SimFuture:
        """Future that resolves after ``delay`` virtual time units."""
        fut = SimFuture(self)
        self.post(delay, fut.try_set_result, None)
        return fut

    def wait_for(self, awaitable: Awaitable, timeout: float) -> SimFuture:
        """Wrap an awaitable with a timeout.

        The returned future resolves with the awaitable's result, or fails
        with :class:`SimTimeoutError` if ``timeout`` elapses first.  The
        underlying computation is *not* cancelled on timeout (matching the
        fire-and-forget nature of datagram protocols this models).
        """
        inner = awaitable if isinstance(awaitable, SimFuture) else self.spawn(awaitable)
        out = self.create_future()
        handle = self.schedule(
            timeout, out.try_set_exception, SimTimeoutError(f"timeout after {timeout}")
        )

        def _done(fut: SimFuture) -> None:
            handle.cancel()
            if fut._exception is not None:
                out.try_set_exception(fut._exception)
            else:
                out.try_set_result(fut._result)

        inner.add_done_callback(_done)
        return out

    def all_of(self, futures: Iterable[SimFuture]) -> SimFuture:
        """Future resolving with a list of results once every input is done.

        The first exception (if any) fails the aggregate immediately.
        """
        futures = list(futures)
        out = self.create_future()
        if not futures:
            out.set_result([])
            return out
        remaining = [len(futures)]

        def _one_done(_fut: SimFuture) -> None:
            if out.done():
                return
            if _fut._exception is not None:
                out.try_set_exception(_fut._exception)
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                out.try_set_result([f._result for f in futures])

        for f in futures:
            f.add_done_callback(_one_done)
        return out

    def any_of(self, futures: Iterable[SimFuture]) -> SimFuture:
        """Future resolving with the first completed input's result."""
        futures = list(futures)
        if not futures:
            raise ValueError("any_of requires at least one future")
        out = self.create_future()

        def _one_done(fut: SimFuture) -> None:
            if fut._exception is not None:
                out.try_set_exception(fut._exception)
            else:
                out.try_set_result(fut._result)

        for f in futures:
            f.add_done_callback(_one_done)
        return out

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _next_live(self) -> _Event | None:
        """Pop-and-return the next live event in (when, seq) order, or
        ``None`` when both queues are drained of live events.  Dead entries
        encountered on the way out are discarded."""
        queue, fifo = self._queue, self._fifo
        while True:
            while fifo and fifo[0].cancelled:
                fifo.popleft()
                self._cancelled -= 1
            while queue and queue[0][2].cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
            if fifo:
                if queue:
                    head = queue[0]
                    first = fifo[0]
                    if (head[0], head[1]) < (first.when, first.seq):
                        event = heapq.heappop(queue)[2]
                    else:
                        event = fifo.popleft()
                else:
                    event = fifo.popleft()
            elif queue:
                event = heapq.heappop(queue)[2]
            else:
                return None
            if not event.cancelled:
                return event

    def _peek_when(self) -> float | None:
        """Virtual time of the next live event (``None`` when idle)."""
        queue, fifo = self._queue, self._fifo
        while fifo and fifo[0].cancelled:
            fifo.popleft()
            self._cancelled -= 1
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1
        if fifo and queue:
            return min(fifo[0].when, queue[0][0])
        if fifo:
            return fifo[0].when
        if queue:
            return queue[0][0]
        return None

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events until the queue empties, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed.

        Events sharing a timestamp are drained as a batch: once one event at
        time ``t`` has passed the ``until`` check, everything else at ``t``
        fires without re-checking the bound.
        """
        processed = 0
        witness = self._witness
        guard = self._det_guard
        engaged_before = False
        if guard is not None:
            engaged_before = guard.engaged
            guard.engaged = True
        try:
            while True:
                when = self._peek_when()
                if when is None:
                    if until is not None and until > self.now:
                        self.now = until
                    break
                if until is not None and when > until:
                    self.now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                # same-timestamp batch: deliver every event at `when`
                # (including zero-delay events the callbacks add) without
                # another bound check
                self.now = when
                while True:
                    event = self._next_live()
                    if event is None:
                        break
                    if event.when != when:
                        # overshot into the next timestamp: put it back un-run
                        heapq.heappush(self._queue,
                                       (event.when, event.seq, event))
                        break
                    event.fn(*event.args)
                    if witness is not None:
                        witness.fold_event(when, event.seq,
                                           event.fn, event.args)
                    # mark fired so a later handle.cancel() (RPC replies
                    # cancel their own just-fired timeout) cannot skew the
                    # dead count
                    event.cancelled = True
                    processed += 1
                    self._events_processed += 1
                    if max_events is not None and processed >= max_events:
                        break
        finally:
            if guard is not None:
                guard.engaged = engaged_before
        return processed

    def run_until_complete(self, awaitable: Awaitable, limit: float | None = None) -> Any:
        """Drive the simulation until ``awaitable`` resolves; return its result.

        ``limit`` bounds virtual time as a safety net against livelock; if the
        awaitable is still pending at ``limit`` a :class:`SimTimeoutError` is
        raised.
        """
        fut = awaitable if isinstance(awaitable, SimFuture) else self.spawn(awaitable)
        # this loop drives every simulation in the repository: the merge of
        # the two queues is inlined (no per-event helper calls) because one
        # long scale run pumps millions of events through here
        queue, fifo = self._queue, self._fifo
        heappop = heapq.heappop
        witness = self._witness
        guard = self._det_guard
        engaged_before = False
        if guard is not None:
            engaged_before = guard.engaged
            guard.engaged = True
        try:
            return self._drive(fut, limit, queue, fifo, heappop, witness)
        finally:
            if guard is not None:
                guard.engaged = engaged_before

    def _drive(self, fut: SimFuture, limit: float | None, queue, fifo,
               heappop, witness) -> Any:
        while not fut._done:
            while fifo and fifo[0].cancelled:
                fifo.popleft()
                self._cancelled -= 1
            while queue and queue[0][2].cancelled:
                heappop(queue)
                self._cancelled -= 1
            if fifo:
                event = fifo[0]
                if queue:
                    head = queue[0]
                    if head[0] < event.when or (head[0] == event.when
                                                and head[1] < event.seq):
                        event = head[2]
                        if limit is not None and event.when > limit:
                            raise SimTimeoutError(
                                f"virtual-time limit {limit} reached")
                        heappop(queue)
                    else:
                        fifo.popleft()
                else:
                    fifo.popleft()
            elif queue:
                event = queue[0][2]
                if limit is not None and event.when > limit:
                    raise SimTimeoutError(f"virtual-time limit {limit} reached")
                heappop(queue)
            else:
                raise RuntimeError(
                    "simulation deadlock: no live events but future pending "
                    f"({self.live_events} live events)")
            self.now = event.when
            event.fn(*event.args)
            if witness is not None:
                witness.fold_event(event.when, event.seq,
                                   event.fn, event.args)
            event.cancelled = True  # fired; see note in run()
            self._events_processed += 1
        return fut.result()

    def shutdown(self) -> None:
        """Tear down a simulation mid-flight: drop every queued event and
        close the coroutines of tasks that never got to run, so nothing
        lingers to be flagged at garbage collection.  Idempotent."""
        for event in [entry[2] for entry in self._queue] + list(self._fifo):
            if event.cancelled:
                continue
            owner = getattr(event.fn, "__self__", None)
            if isinstance(owner, Task) and not owner._started \
                    and not owner._done:
                # closing before GC means no never-awaited warning can fire
                owner._coro.close()
                _unadopt(owner._coro)
                owner.try_set_exception(TaskCancelled())
            event.cancelled = True
        self._queue.clear()
        self._fifo.clear()
        self._cancelled = 0

    @property
    def events_processed(self) -> int:
        """Total events this kernel has executed (for diagnostics)."""
        return self._events_processed

    @property
    def live_events(self) -> int:
        """Number of events queued and still due to fire.

        Cancelled-but-unreaped entries are excluded — this is the honest
        "is the simulation actually idle?" figure the deadlock diagnostic
        reports.
        """
        return len(self._queue) + len(self._fifo) - self._cancelled

    @property
    def pending_events(self) -> int:
        """Alias of :attr:`live_events`.

        Historical note: this used to report raw queue length *including*
        cancelled timers, which made an idle simulation with a heap of dead
        RPC-timeout entries look busy.
        """
        return self.live_events
