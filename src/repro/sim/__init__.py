"""Discrete-event simulation kernel.

This package provides the virtual-time substrate that every other layer of
the reproduction runs on: a :class:`~repro.sim.kernel.Kernel` event loop with
a virtual clock, awaitable :class:`~repro.sim.kernel.SimFuture` objects, and
cooperative :class:`~repro.sim.kernel.Task` coroutines.

The original Deceit system ran on real machines and real networks; all of
its protocol claims, however, are about message *rounds*, delivery *order*,
and failure *visibility* — quantities a discrete-event simulation reproduces
exactly.  Protocol code throughout the repository is written as ordinary
``async def`` coroutines that ``await`` on simulated time and simulated
message delivery.

Example
-------
>>> from repro.sim import Kernel
>>> k = Kernel()
>>> async def hello():
...     await k.sleep(5.0)
...     return k.now
>>> k.run_until_complete(k.spawn(hello()))
5.0
"""

from repro.sim.kernel import (
    Kernel,
    SimFuture,
    SimTimeoutError,
    Task,
    TaskCancelled,
)

__all__ = [
    "Kernel",
    "SimFuture",
    "SimTimeoutError",
    "Task",
    "TaskCancelled",
]
