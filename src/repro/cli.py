"""Console entry point: run the quickstart demo (``repro`` on the CLI).

Mirrors ``examples/quickstart.py`` — a three-server Deceit cell that
creates a file, tunes its per-file semantics (§4), crashes the connected
server, and keeps working through client failover — packaged as an
installable command so ``pip install -e . && repro`` gives a working tour
without cloning the examples directory.
"""

from __future__ import annotations

from repro.testbed import build_cluster


def quickstart() -> bytes:
    """The demo scenario; returns the bytes read back after the crash."""
    cluster = build_cluster(n_servers=3, n_agents=1)
    agent = cluster.agents[0]

    async def demo():
        await agent.mount()
        print(f"mounted root {agent.root_fh} via {agent.server}")

        # ordinary NFS operations — no client modification needed
        await agent.mkdir("/", "home")
        await agent.create("/home", "notes.txt")
        await agent.write_file("/home/notes.txt", b"Deceit quickstart\n")
        print("wrote /home/notes.txt:", await agent.read_file("/home/notes.txt"))

        # the Deceit extras: per-file semantic parameters (§4)
        params = await agent.set_params("/home/notes.txt",
                                        min_replicas=3, write_safety=2)
        print("tuned params:", params)
        located = await agent.locate("/home/notes.txt")
        print(f"replicas now on {located['holders']}, "
              f"token at {located['token_holder']}")

        # kill the server the client is talking to — and keep going
        victim = agent.server
        cluster.crash([s.addr for s in cluster.servers].index(victim))
        print(f"crashed {victim}; client fails over transparently...")
        # wait out the agent's cache TTL so the read really goes remote
        await cluster.kernel.sleep(3500.0)

        data = await agent.read_file("/home/notes.txt")
        print(f"read after crash via {agent.server}: {data!r}")
        assert agent.server != victim
        return data

    result = cluster.run(demo())
    print(f"\nvirtual time elapsed: {cluster.kernel.now:.1f} ms")
    print(f"network messages: {cluster.metrics.get('net.msgs')}")
    cluster.close()  # drop queued events and never-started tasks cleanly
    return result


def main() -> None:
    """``repro`` console script."""
    data = quickstart()
    assert data == b"Deceit quickstart\n"
    print("quickstart OK")


if __name__ == "__main__":
    main()
