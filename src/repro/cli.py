"""Console entry point (``repro`` on the CLI).

Subcommands:

- ``repro`` / ``repro quickstart`` — the tour.  Mirrors
  ``examples/quickstart.py``: a three-server Deceit cell that creates a
  file, tunes its per-file semantics (§4), crashes the connected server,
  and keeps working through client failover.
- ``repro profile`` — the perf-work loop.  Runs a named workload
  (``hotspot`` / ``baseline`` / ``streaming``) on a scale-profile cell
  under :mod:`cProfile` and prints the top hotspots, so "what is the
  simulator spending its time on at N servers?" is one command instead
  of a scratch script.
- ``repro restart-bench`` — one cold-restart cycle at a chosen size and
  backend: populate, ``kill -9`` the cell, restart from the storage
  backends alone, and print where the restart wall clock went.  The
  quick interactive face of ``benchmarks/test_perf_restart.py``.
- ``repro detlint`` — the determinism-contract linter
  (:mod:`repro.analysis.detlint`): flags host-clock reads, global RNG
  use, OS entropy, id()-ordering, and unordered dict/set iteration
  that feeds scheduling, in sim-domain sources.  Exits non-zero on any
  unsuppressed violation, so it gates in CI.
- ``repro detcheck`` — run a seeded workload twice with a witness hash
  chain attached and compare (:mod:`repro.analysis.detcheck`); on
  divergence, binary-search the checkpoints and name the first
  divergent event.  ``--inject-fault`` plants a controlled divergence
  to demo/exercise the bisector.
- ``repro racelint`` — the atomicity-contract linter
  (:mod:`repro.analysis.racelint`): flags unguarded lock acquires,
  stale reads across awaits, leaked waiter futures, and shared-state
  mutation from non-task callbacks.  Exits non-zero on any
  unsuppressed violation, so it gates in CI.
- ``repro racecheck`` — run N seeded schedule perturbations of a
  workload with the yield sanitizer armed
  (:mod:`repro.analysis.racecheck`): same-timestamp tie-breaking is
  shuffled by a dedicated RNG, check-then-act races are reported with
  both tasks and event positions, and any hit replays exactly from
  ``(seed, perturb_seed)``.
- ``repro loadtest`` — the saturation/SLO harness
  (:mod:`repro.obs.loadtest`): ramp closed-loop client concurrency
  stepwise over fresh same-seed cells, print per-step throughput and
  latency percentiles, and mark the knee where throughput plateaus.
  ``--gate-rate`` arms the per-server admission token bucket so the
  gated/ungated overload comparison is one flag away.
- ``repro trace`` — run a seeded workload with request tracing armed
  (:mod:`repro.obs.tracer`) and print waterfall renderings of the
  slowest end-to-end requests: agent envelope → RPC service → pipeline
  → disk commit → network hops, all in virtual time.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro.testbed import build_cluster, build_scale_cluster


def quickstart() -> bytes:
    """The demo scenario; returns the bytes read back after the crash."""
    cluster = build_cluster(n_servers=3, n_agents=1)
    agent = cluster.agents[0]

    async def demo():
        await agent.mount()
        print(f"mounted root {agent.root_fh} via {agent.server}")

        # ordinary NFS operations — no client modification needed
        await agent.mkdir("/", "home")
        await agent.create("/home", "notes.txt")
        await agent.write_file("/home/notes.txt", b"Deceit quickstart\n")
        print("wrote /home/notes.txt:", await agent.read_file("/home/notes.txt"))

        # the Deceit extras: per-file semantic parameters (§4)
        params = await agent.set_params("/home/notes.txt",
                                        min_replicas=3, write_safety=2)
        print("tuned params:", params)
        located = await agent.locate("/home/notes.txt")
        print(f"replicas now on {located['holders']}, "
              f"token at {located['token_holder']}")

        # kill the server the client is talking to — and keep going
        victim = agent.server
        cluster.crash([s.addr for s in cluster.servers].index(victim))
        print(f"crashed {victim}; client fails over transparently...")
        # wait out the agent's cache TTL so the read really goes remote
        await cluster.kernel.sleep(3500.0)

        data = await agent.read_file("/home/notes.txt")
        print(f"read after crash via {agent.server}: {data!r}")
        assert agent.server != victim
        return data

    result = cluster.run(demo())
    print(f"\nvirtual time elapsed: {cluster.kernel.now:.1f} ms")
    print(f"network messages: {cluster.metrics.get('net.msgs')}")
    cluster.close()  # drop queued events and never-started tasks cleanly
    return result


def profile(workload: str = "hotspot", n_servers: int = 16,
            n_agents: int = 8, duration_ms: float = 5_000.0, seed: int = 42,
            top: int = 20, sort: str = "cumulative") -> pstats.Stats:
    """Profile one seeded workload replay; print the ``top`` hotspots.

    The workload is generated up front and the cell is built *outside*
    the profiled region, so the numbers are the steady-state simulation
    cost — the thing the kernel/network fast paths optimize — not
    cluster construction.
    """
    from repro.workloads import (WorkloadConfig, WorkloadGenerator,
                                 hotspot_config, streaming_config)
    from repro.workloads.replay import replay

    factory = {"hotspot": hotspot_config, "baseline": WorkloadConfig,
               "streaming": streaming_config}[workload]
    cfg = factory(n_clients=n_agents, duration_ms=duration_ms, seed=seed)
    ops = WorkloadGenerator(cfg).generate()
    cluster = build_scale_cluster(n_servers=n_servers, n_agents=n_agents,
                                  seed=seed)
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    stats = cluster.run(replay(cluster, ops), limit=10_000_000.0)
    profiler.disable()
    wall = time.perf_counter() - t0
    events = cluster.kernel.events_processed
    print(f"{workload} workload on {n_servers} servers / {n_agents} agents: "
          f"{stats.attempted} ops ({stats.succeeded} ok) in {wall:.2f}s wall "
          f"— {stats.attempted / wall:.0f} ops/s, "
          f"{events / wall:,.0f} events/s, "
          f"p50 {stats.latency.percentile(50):.1f} ms virtual")
    ps = pstats.Stats(profiler)
    ps.sort_stats(sort).print_stats(top)
    cluster.close()
    return ps


def restart_bench(backend: str = "journal", segments: int = 10_000,
                  storage_dir: str | None = None) -> dict:
    """One populate → kill -9 → cold-restart cycle; print the timings."""
    import pathlib
    import tempfile

    from repro.restartbench import restart_cycle

    root = pathlib.Path(storage_dir or tempfile.mkdtemp(prefix="deceit-"))
    r = restart_cycle(backend, root, segments)
    rep = r["replay"]
    print(f"{backend} backend, {segments} segments on 4 servers:")
    print(f"  populate          {r['populate_s']:8.2f} s")
    print(f"  restart (replay + cold start) {r['restart_s']:8.3f} s")
    print(f"  first mount+read  {r['first_read_s']:8.3f} s")
    print(f"  restart-to-serving {r['to_serving_s']:7.3f} s "
          f"({r['us_per_segment']:.1f} us/segment)")
    if rep["records"]:
        print(f"  journal replay    {rep['records'] / rep['wall_s']:,.0f} "
              f"records/s, {rep['bytes'] / rep['wall_s'] / 1e6:.1f} MB/s")
    print(f"  file groups resurrected: {r['resurrected']}")
    return r


def loadtest_cmd(n_servers: int = 4, steps: tuple[int, ...] | None = None,
                 duration_ms: float = 1500.0, seed: int = 42,
                 write_fraction: float = 0.3, slo_p99_ms: float | None = None,
                 gate_rate: float | None = None,
                 gate_burst: float = 32.0) -> dict:
    """Run the saturation ramp and print the operator table."""
    from repro.obs.admission import AdmissionConfig
    from repro.obs.loadtest import DEFAULT_STEPS, format_report, loadtest

    admission = (AdmissionConfig(rate_per_ms=gate_rate, burst=gate_burst)
                 if gate_rate is not None else None)
    report = loadtest(n_servers=n_servers,
                      steps=tuple(steps) if steps else DEFAULT_STEPS,
                      duration_ms=duration_ms, seed=seed,
                      write_fraction=write_fraction, slo_p99_ms=slo_p99_ms,
                      admission=admission)
    print(format_report(report))
    return report


def trace_cmd(workload: str = "hotspot", n_servers: int = 4,
              n_agents: int = 4, duration_ms: float = 1_000.0,
              seed: int = 42, slowest: int = 5) -> None:
    """Run a traced seeded workload; print the slowest-request waterfalls."""
    from repro.workloads import (WorkloadConfig, WorkloadGenerator,
                                 hotspot_config, streaming_config)
    from repro.workloads.replay import replay

    factory = {"hotspot": hotspot_config, "baseline": WorkloadConfig,
               "streaming": streaming_config}[workload]
    cfg = factory(n_clients=n_agents, duration_ms=duration_ms, seed=seed)
    ops = WorkloadGenerator(cfg).generate()
    cluster = build_scale_cluster(n_servers=n_servers, n_agents=n_agents,
                                  seed=seed, tracing=True)
    stats = cluster.run(replay(cluster, ops), limit=10_000_000.0)
    print(f"{workload} workload on {n_servers} servers / {n_agents} agents: "
          f"{stats.attempted} ops ({stats.succeeded} ok), "
          f"{cluster.kernel.now:.0f} ms virtual\n")
    assert cluster.tracer is not None
    print(cluster.tracer.report(slowest))
    cluster.close()


def main(argv: list[str] | None = None) -> None:
    """``repro`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Deceit reproduction: demos and tooling.")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("quickstart", help="run the guided tour (the default)")
    prof = sub.add_parser(
        "profile", help="cProfile a seeded workload on a scale-profile cell")
    prof.add_argument("--workload", default="hotspot",
                      choices=["hotspot", "baseline", "streaming"],
                      help="named workload mix (default: hotspot)")
    prof.add_argument("--servers", type=int, default=16,
                      help="cell size (default: 16)")
    prof.add_argument("--agents", type=int, default=8,
                      help="client agents (default: 8)")
    prof.add_argument("--duration-ms", type=float, default=5_000.0,
                      help="virtual workload duration (default: 5000)")
    prof.add_argument("--seed", type=int, default=42)
    prof.add_argument("--top", type=int, default=20,
                      help="hotspot rows to print (default: 20)")
    prof.add_argument("--sort", default="cumulative",
                      choices=["cumulative", "tottime", "ncalls"],
                      help="pstats sort key (default: cumulative)")
    rb = sub.add_parser(
        "restart-bench",
        help="time one kill -9 / cold-restart cycle of a populated cell")
    rb.add_argument("--backend", default="journal",
                    choices=["memory", "journal", "sqlite"],
                    help="storage backend (default: journal)")
    rb.add_argument("--segments", type=int, default=10_000,
                    help="segments to populate cell-wide (default: 10000)")
    rb.add_argument("--storage-dir", default=None,
                    help="where backend files go (default: a temp dir)")
    dl = sub.add_parser(
        "detlint",
        help="lint sim-domain sources against the determinism contract")
    dl.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    dl.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    dc = sub.add_parser(
        "detcheck",
        help="run a seeded workload twice and bisect any divergence")
    dc.add_argument("--workload", default="hotspot",
                    choices=["hotspot", "zipf", "baseline", "streaming"],
                    help="named workload mix (default: hotspot)")
    dc.add_argument("--servers", type=int, default=16,
                    help="cell size (default: 16)")
    dc.add_argument("--agents", type=int, default=8,
                    help="client agents (default: 8)")
    dc.add_argument("--duration-ms", type=float, default=2_000.0,
                    help="virtual workload duration (default: 2000)")
    dc.add_argument("--seed", type=int, default=42)
    dc.add_argument("--checkpoint-interval", type=int, default=1024,
                    help="events per witness checkpoint (default: 1024)")
    dc.add_argument("--inject-fault", type=int, default=None, metavar="N",
                    help="steal one RNG draw before event N in run 2 "
                         "(a controlled divergence, to exercise the "
                         "bisector)")
    rl = sub.add_parser(
        "racelint",
        help="lint sim-domain sources against the atomicity contract")
    rl.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    rl.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    rc = sub.add_parser(
        "racecheck",
        help="run N perturbed schedules with the yield sanitizer armed")
    rc.add_argument("--workload", default="zipf",
                    choices=["hotspot", "zipf", "baseline", "streaming"],
                    help="named workload mix (default: zipf)")
    rc.add_argument("--servers", type=int, default=16,
                    help="cell size (default: 16)")
    rc.add_argument("--agents", type=int, default=8,
                    help="client agents (default: 8)")
    rc.add_argument("--duration-ms", type=float, default=2_000.0,
                    help="virtual workload duration (default: 2000)")
    rc.add_argument("--seed", type=int, default=42)
    rc.add_argument("--schedules", type=int, default=8,
                    help="perturbed schedules to run (default: 8)")
    lt = sub.add_parser(
        "loadtest",
        help="ramp client concurrency to saturation; report the knee")
    lt.add_argument("--servers", type=int, default=4,
                    help="cell size (default: 4)")
    lt.add_argument("--steps", default=None,
                    help="comma-separated concurrency ramp "
                         "(default: 1,2,4,8,16)")
    lt.add_argument("--duration-ms", type=float, default=1500.0,
                    help="virtual duration per step (default: 1500)")
    lt.add_argument("--seed", type=int, default=42)
    lt.add_argument("--write-fraction", type=float, default=0.3,
                    help="fraction of ops that are writes (default: 0.3)")
    lt.add_argument("--slo-p99-ms", type=float, default=None,
                    help="per-op p99 SLO to check each step against")
    lt.add_argument("--gate-rate", type=float, default=None, metavar="OPS_MS",
                    help="arm per-server admission at this ops/ms rate")
    lt.add_argument("--gate-burst", type=float, default=32.0,
                    help="admission token-bucket burst (default: 32)")
    tr = sub.add_parser(
        "trace",
        help="run a traced workload; print the slowest request waterfalls")
    tr.add_argument("--workload", default="hotspot",
                    choices=["hotspot", "baseline", "streaming"],
                    help="named workload mix (default: hotspot)")
    tr.add_argument("--servers", type=int, default=4,
                    help="cell size (default: 4)")
    tr.add_argument("--agents", type=int, default=4,
                    help="client agents (default: 4)")
    tr.add_argument("--duration-ms", type=float, default=1_000.0,
                    help="virtual workload duration (default: 1000)")
    tr.add_argument("--seed", type=int, default=42)
    tr.add_argument("--slowest", type=int, default=5,
                    help="traces to render (default: 5)")
    args = parser.parse_args(argv)
    if args.command == "detlint":
        from repro.analysis import detlint
        lint_args = list(args.paths or ["src"])
        if args.list_rules:
            lint_args.append("--list-rules")
        raise SystemExit(detlint.main(lint_args))
    if args.command == "detcheck":
        from repro.analysis.detcheck import detcheck, format_report
        report = detcheck(workload=args.workload, n_servers=args.servers,
                          n_agents=args.agents, duration_ms=args.duration_ms,
                          seed=args.seed,
                          checkpoint_interval=args.checkpoint_interval,
                          inject_fault_at=args.inject_fault)
        print(format_report(report))
        raise SystemExit(0 if report["identical"] else 1)
    if args.command == "racelint":
        from repro.analysis import racelint
        lint_args = list(args.paths or ["src"])
        if args.list_rules:
            lint_args.append("--list-rules")
        raise SystemExit(racelint.main(lint_args))
    if args.command == "racecheck":
        from repro.analysis.racecheck import format_report as format_races
        from repro.analysis.racecheck import racecheck
        report = racecheck(workload=args.workload, n_servers=args.servers,
                           n_agents=args.agents,
                           duration_ms=args.duration_ms, seed=args.seed,
                           schedules=args.schedules)
        print(format_races(report))
        raise SystemExit(0 if report["clean"] else 1)
    if args.command == "loadtest":
        steps = (tuple(int(s) for s in args.steps.split(","))
                 if args.steps else None)
        loadtest_cmd(n_servers=args.servers, steps=steps,
                     duration_ms=args.duration_ms, seed=args.seed,
                     write_fraction=args.write_fraction,
                     slo_p99_ms=args.slo_p99_ms, gate_rate=args.gate_rate,
                     gate_burst=args.gate_burst)
        return
    if args.command == "trace":
        trace_cmd(workload=args.workload, n_servers=args.servers,
                  n_agents=args.agents, duration_ms=args.duration_ms,
                  seed=args.seed, slowest=args.slowest)
        return
    if args.command == "restart-bench":
        restart_bench(backend=args.backend, segments=args.segments,
                      storage_dir=args.storage_dir)
        return
    if args.command == "profile":
        profile(workload=args.workload, n_servers=args.servers,
                n_agents=args.agents, duration_ms=args.duration_ms,
                seed=args.seed, top=args.top, sort=args.sort)
        return
    data = quickstart()
    assert data == b"Deceit quickstart\n"
    print("quickstart OK")


if __name__ == "__main__":
    main()
