"""Cold-restart measurement machinery (shared by the benchmark and CLI).

One restart cycle is: build a journal/sqlite/memory-backed cell, create a
probe file through a real agent, bulk-load a synthetic namespace, ``kill
-9`` every server, cold-restart the cell from the storage backends alone
(no reconcile — the synthetic segments are single-replica, so there is
nothing to merge), and prove "serving" with a fresh mount and an
end-to-end read of the probe file.

Populating 100k segments through the full distributed create protocol
would cost minutes of wall clock and measure the *create* path; the bulk
load instead writes each server's share straight through its
:class:`~repro.core.pipeline.store.ReplicaStore` — the identical replica
and token records a single-replica create leaves behind, committed in the
same group-commit batches — so the restart path sees exactly the disk
state a real history would have produced.
"""

from __future__ import annotations

import time

from repro.core import FileParams
from repro.core.segment import Replica, Token
from repro.core.versions import HistoryIndex, VersionPair
from repro.testbed import build_cluster

N_SERVERS = 4
SEED = 31
PAYLOAD = b"r" * 64
BATCH_RECORDS = 1_000   # kv entries per group-commit batch while loading


def populate(cluster, n_segments: int) -> float:
    """Load ``n_segments`` synthetic segments across the cell's disks.

    Each segment gets the durable footprint of a single-replica create —
    one replica record plus one token record — committed in group-commit
    batches.  Returns the wall seconds spent."""
    t0 = time.perf_counter()

    async def fill():
        for rank, server in enumerate(cluster.servers):
            store = server.segments.store
            alloc = server.segments.alloc
            share = n_segments // len(cluster.servers) + (
                1 if rank < n_segments % len(cluster.servers) else 0)
            params = FileParams(min_replicas=1, stability_notification=False)
            batch = []
            for i in range(share):
                major = alloc.next_major()
                sid = f"{server.addr}.b{i}"
                version = VersionPair(major, 1)
                replica = Replica(sid=sid, major=major, data=PAYLOAD,
                                  meta={}, version=version, params=params,
                                  branches=HistoryIndex())
                token = Token(sid=sid, major=major, version=version,
                              parent=None, holders=[server.addr])
                batch.append((store._rep_key(sid, major), replica.to_dict()))
                batch.append((store._tok_key(sid, major), token.to_dict()))
                if len(batch) >= BATCH_RECORDS:
                    await store.kv.put_batch(batch, sync=True)
                    batch = []
            if batch:
                await store.kv.put_batch(batch, sync=True)

    cluster.run(fill(), limit=10_000_000.0)
    return time.perf_counter() - t0


def restart_cycle(backend: str, storage_root, n_segments: int) -> dict:
    """Build, populate, kill -9, restart, serve; return the timings."""
    kw = {}
    if backend != "memory":
        kw = {"backend": backend,
              "storage_dir": str(storage_root / f"{backend}-{n_segments}")}
    cluster = build_cluster(N_SERVERS, n_agents=1, seed=SEED, **kw)
    agent = cluster.agents[0]

    async def probe_setup():
        await agent.mount()
        await agent.create("/", "probe")
        await agent.write_file("/probe", b"served after restart")

    cluster.run(probe_setup())
    populate_s = populate(cluster, n_segments)
    cluster.settle(100.0)
    cluster.kill()

    replay = {"records": 0, "bytes": 0, "wall_s": 0.0}
    if backend == "journal":
        # replay one server's journal in isolation for a clean throughput
        # number (restart below replays it again from the same frames)
        t0 = time.perf_counter()
        reloaded = cluster.servers[0].disk.backend.reopen()
        reloaded.load()
        replay["wall_s"] = time.perf_counter() - t0
        replay.update({k: reloaded.replay_stats[k]
                       for k in ("records", "bytes")})
        reloaded.close()

    t0 = time.perf_counter()
    cluster.restart(reconcile=False)
    restart_s = time.perf_counter() - t0

    agent = cluster.agents[0]

    async def first_read():
        await agent.mount()
        return await agent.read_file("/probe")

    t0 = time.perf_counter()
    data = cluster.run(first_read())
    serve_s = time.perf_counter() - t0
    assert data == b"served after restart"

    resurrected = cluster.metrics.get("deceit.groups_resurrected")
    cluster.close()
    return {
        "backend": backend,
        "segments": n_segments,
        "populate_s": populate_s,
        "restart_s": restart_s,
        "first_read_s": serve_s,
        "to_serving_s": restart_s + serve_s,
        "us_per_segment": (restart_s + serve_s) / n_segments * 1e6,
        "resurrected": resurrected,
        "replay": replay,
    }
