"""Client agents (§5.3).

The agent is the client-side software between the user process and the NFS
protocol.  Figure 8 shows the placement options — kernel procedure, user
loadable library, or auxiliary user process — which differ in the cost of
the local hop between the user program and the agent.

Agent functions, each independently switchable (the F8 experiment sweeps
them):

- **caching** of file data, attributes, and path→handle bindings;
- **failover**: when the connected server fails, pick another and continue
  (Deceit handles are server-independent, so this just works — "standard
  NFS client software does not provide this capability", §2.1);
- **access shortcut**: cache replica locations and talk straight to a
  server that holds the file, skipping the forwarding hop.
"""

from repro.agent.agent import Agent, AgentConfig, Placement

__all__ = ["Agent", "AgentConfig", "Placement"]
