"""The Deceit client agent: user-program-facing file API over NFS RPCs."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace as dc_replace
from enum import Enum
from typing import Any

from repro.core.striping import split_range
from repro.errors import NfsError, NfsStat, RpcTimeout, Unreachable, nfs_error
from repro.net import Network, Node
from repro.net.network import RpcRemoteError
from repro.nfs.attrs import FileAttrs, FileType
from repro.nfs.fhandle import FileHandle
from repro.nfs.names import split_path

RPC_TIMEOUT_MS = 600.0


class Placement(Enum):
    """Where the agent runs (Figure 8), fixing the user↔agent hop cost.

    Values are the per-call latency in virtual ms: a kernel procedure call
    is cheap, a user loadable library cheaper still (no kernel crossing),
    and an auxiliary user process pays local IPC both ways.
    """

    KERNEL = 0.05
    USER_LIBRARY = 0.02
    AUX_PROCESS = 0.40

    @property
    def hop_ms(self) -> float:
        """Latency of one user-program → agent crossing."""
        return self.value


@dataclass
class AgentConfig:
    """Feature switches for one agent instance."""

    placement: Placement = Placement.KERNEL
    cache: bool = True
    failover: bool = True
    shortcut: bool = False
    attr_ttl_ms: float = 3000.0
    data_ttl_ms: float = 3000.0
    #: After the TTL expires, revalidate the cached copy by version pair
    #: instead of refetching the payload: the server answers "unchanged"
    #: (no data bytes) when the segment is still at the cached version.
    version_validate: bool = True
    #: The agent-side router: learn replica locations from the placement
    #: hints piggybacked on read replies and send subsequent reads
    #: directly to a current replica holder instead of always the mount
    #: server.  Unlike ``shortcut`` (§5.3) it costs no extra ``locate``
    #: RPC — hints ride replies the agent receives anyway.
    route_hints: bool = False
    #: Agent-side write-behind: buffer ``write_at``/``write_file`` per
    #: handle, coalescing overlapping writes, serving read-your-writes
    #: locally, and flushing on ``flush()``/``close()``/TTL as one batched
    #: write.  The ack point honors the file's §4 ``write_safety``: level 0
    #: acks as soon as the bytes are buffered (asynchronous unsafe writes);
    #: level >= 1 acks when the flush returns — i.e. after the server has
    #: collected ``write_safety`` replica replies.
    write_behind: bool = False
    #: Sequential readahead for striped files: when ranged reads walk the
    #: file front to back, the next stripe is prefetched in the background
    #: so a scan's next request is answered from agent memory.
    readahead: bool = True
    #: How long a ``write_safety >= 1`` buffered write waits for peers to
    #: join its flush (group commit at the agent: concurrent writers to one
    #: handle coalesce into a single batched update).
    write_behind_window_ms: float = 5.0
    #: Flush deadline for ``write_safety == 0`` buffered data — the bound
    #: on how long an acked-but-unflushed write may live only in agent
    #: memory.
    write_behind_ttl_ms: float = 50.0
    #: How many times a request answered ``ERR_BUSY`` by a server's
    #: admission gate (repro.obs.admission) is retried before the error
    #: surfaces.  Retries hit the *same* server — BUSY is backpressure,
    #: not failure, so it must not trigger failover stampedes.
    busy_retries: int = 4
    #: First BUSY backoff; doubles per retry.  Scaled by a deterministic
    #: per-agent stagger (a CRC of the agent's address): identical
    #: backoffs would march rejected clients in lockstep — convoys that
    #: retry together and let the admission bucket cap out (wasting
    #: refill) in the gaps.  CRC-derived stagger desynchronizes them
    #: while keeping same-seed runs byte-identical.
    busy_backoff_ms: float = 2.0
    #: Ceiling on one BUSY backoff sleep: the doubling stops here, so a
    #: patient client (high ``busy_retries``) waits out a long overload
    #: in bounded slices rather than milliseconds-to-seconds doubling.
    busy_backoff_cap_ms: float = 64.0


class _WriteBuffer:
    """Per-handle write-behind state: a whole-file image *or* coalesced
    positioned patches, plus the flush rendezvous.

    ``pending_fut`` is the future for the flush that will cover the
    currently-buffered bytes (write-safety >= 1 writers await it);
    ``inflight`` is the flush currently on the wire — new writes buffered
    while it runs belong to the *next* flush, never the running one.
    """

    def __init__(self) -> None:
        self.whole: bytes | None = None
        self.patches: list[tuple[int, bytes]] = []
        self.buffered_ops = 0
        self.pending_fut = None
        self.inflight = None
        self.armed = None           # EventHandle of the scheduled flush
        #: best-known server-side size when buffering began (from the
        #: attr/data caches) — the base for locally-synthesized attrs
        self.base_size = 0
        #: (stripe_size, size) captured while the attr cache still had it —
        #: buffering evicts the cached attrs, but the flush needs to know
        #: the file's stripe width to split the batch per stripe
        self.stripe_hint: tuple[int, int] | None = None

    @property
    def dirty(self) -> bool:
        return self.whole is not None or bool(self.patches)

    def set_whole(self, data: bytes) -> None:
        """A truncating whole-file write supersedes everything buffered."""
        self.whole = data
        self.patches = []
        self.buffered_ops += 1

    def add_patch(self, offset: int, data: bytes) -> None:
        """Fold a positioned write in, merging overlapping/adjacent runs
        (the incoming bytes win where runs overlap)."""
        self.buffered_ops += 1
        if self.whole is not None:
            image = self.whole
            if offset > len(image):
                image = image + b"\x00" * (offset - len(image))
            self.whole = image[:offset] + data + image[offset + len(data):]
            return
        new_off, new_buf = offset, data
        kept: list[tuple[int, bytes]] = []
        for off, buf in self.patches:
            if off + len(buf) < new_off or new_off + len(new_buf) < off:
                kept.append((off, buf))
                continue
            start = min(off, new_off)
            merged = bytearray(max(off + len(buf),
                                   new_off + len(new_buf)) - start)
            merged[off - start: off - start + len(buf)] = buf
            merged[new_off - start: new_off - start + len(new_buf)] = new_buf
            new_off, new_buf = start, bytes(merged)
        kept.append((new_off, new_buf))
        kept.sort()
        self.patches = kept

    def overlay(self, base: bytes) -> bytes:
        """Apply the buffered state over ``base`` (read-your-writes)."""
        if self.whole is not None:
            return self.whole
        out = bytearray(base)
        for off, buf in self.patches:
            if off > len(out):
                out.extend(b"\x00" * (off - len(out)))
            out[off: off + len(buf)] = buf
        return bytes(out)

    def overlay_range(self, base: bytes, offset: int, count: int) -> bytes:
        """Read-your-writes for a *ranged* read: apply only the buffered
        patches intersecting ``[offset, offset+count)`` over ``base``
        (which is that range's server bytes) — no whole-file fetch."""
        if self.whole is not None:
            return self.whole[offset:offset + count]
        out = bytearray(base)
        for off, buf in self.patches:
            lo = max(off, offset)
            hi = min(off + len(buf), offset + count)
            if lo >= hi:
                continue
            if hi - offset > len(out):
                out.extend(b"\x00" * (hi - offset - len(out)))
            out[lo - offset:hi - offset] = buf[lo - off:hi - off]
        return bytes(out)

    def extent(self, base_size: int = 0) -> int:
        """File size implied by the buffer over a ``base_size`` file."""
        if self.whole is not None:
            return len(self.whole)
        if not self.patches:
            return base_size
        return max(base_size,
                   max(off + len(buf) for off, buf in self.patches))


def _split_at_stripes(patches: list[tuple[int, bytes]],
                      stripe_size: int) -> dict[int, list[tuple[int, bytes]]]:
    """Group positioned writes by the stripe they fall in, cutting any
    patch that crosses a stripe boundary at that boundary."""
    groups: dict[int, list[tuple[int, bytes]]] = {}
    for offset, data in patches:
        for cut, take in split_range(offset, offset + len(data), stripe_size):
            groups.setdefault(cut // stripe_size, []).append(
                (cut, data[cut - offset:cut - offset + take]))
    return groups


class Agent(Node):
    """A client machine running the agent.

    The public methods mirror what a user program does through the kernel
    VFS: path-based file operations.  All remote work goes through the NFS
    protocol to the currently connected server.
    """

    def __init__(self, network: Network, addr: str, servers: list[str],
                 config: AgentConfig | None = None):
        super().__init__(network, addr)
        if not servers:
            raise ValueError("agent needs at least one server address")
        self.servers = list(servers)
        self.config = config or AgentConfig()
        self.current = 0
        self.root_fh: FileHandle | None = None
        self._attr_cache: dict[str, tuple[FileAttrs, float]] = {}
        # fh -> (data, expiry, version pair or None)
        self._data_cache: dict[str, tuple[bytes, float, tuple | None]] = {}
        # dirfh -> (entries, expiry, version pair or None): the readdir
        # cache, version-validated on expiry and kept coherent by the
        # dir_version pairs riding this agent's own mutation replies
        self._dir_cache: dict[str, tuple[list[dict], float, tuple | None]] = {}
        # (dirfh, name) -> expiry: names this agent recently saw ERR_NOENT
        # for — a fresh entry answers the repeat lookup with no RPC
        self._neg_cache: dict[tuple[str, str], float] = {}
        self._handle_cache: dict[str, FileHandle] = {}
        self._location_cache: dict[str, str] = {}
        # sid -> replica holders, learned from read-reply placement hints
        # (preferred holder first)
        self._placement_cache: dict[str, list[str]] = {}
        # fh-key -> (start, data, expiry): the last prefetched (or could-be
        # -reused) range of a striped file — one entry per handle
        self._range_cache: dict[str, tuple[int, bytes, float]] = {}
        # fh-key -> next sequential offset (the readahead trigger)
        self._seq_read: dict[str, int] = {}
        # fh-key -> invalidation generation: an in-flight prefetch may only
        # store its reply if no write invalidated the handle since it was
        # spawned (else it would resurrect pre-write bytes)
        self._cache_gen: dict[str, int] = {}
        # write-behind: fh-key -> buffer (+ the handle to flush it with)
        self._write_buffers: dict[str, _WriteBuffer] = {}
        self._wb_handles: dict[str, FileHandle] = {}
        # sid -> (write_safety, expiry): the ack-point decision cache
        self._params_cache: dict[str, tuple[int, float]] = {}
        # fh-key -> asynchronous (safety-0) flush failures, surfaced on
        # the next flush()/close() of THAT handle (or a flush-all)
        self._wb_errors: dict[str, list[NfsError]] = {}
        # deterministic backoff stagger in [1, 2): crc32 (not hash()) so
        # it is stable across processes / PYTHONHASHSEED
        self._busy_stagger = 1.0 + (zlib.crc32(addr.encode()) & 0xFF) / 256.0
        self.metrics = network.metrics

    # ------------------------------------------------------------------ #
    # transport with failover
    # ------------------------------------------------------------------ #

    @property
    def server(self) -> str:
        """Address of the currently connected server."""
        return self.servers[self.current]

    async def _user_hop(self) -> None:
        await self.kernel.sleep(self.config.placement.hop_ms)

    async def _nfs(self, op: str, args: dict[str, Any],
                   to: str | None = None, size_bytes: int = 256,
                   on_target_fail=None) -> dict:
        """One NFS RPC, with failover across servers when enabled.

        This is the NFS envelope's client side, so it is also where a
        request trace begins: while a tracer is armed, a fresh trace id
        is minted per call, rides the task (and every message sent on
        its behalf) through the cell, and the whole call is recorded as
        the root ``agent``-layer span.
        """
        await self._user_hop()
        kernel = self.kernel
        tracer = kernel._tracer
        traced = None
        if tracer is not None:
            traced = kernel._current
            if traced is not None:
                prev_trace = traced.trace
                traced.trace = tid = tracer.mint()
                t0 = kernel.now
        try:
            attempts = len(self.servers) if self.config.failover else 1
            if to is not None:
                attempts += 1  # a failed routed target must not eat the budget
            last_exc: Exception | None = None
            failures = 0
            busy_left = self.config.busy_retries
            busy_wait = self.config.busy_backoff_ms * self._busy_stagger
            while failures < attempts:
                target = to if to is not None else self.server
                try:
                    reply = await self.call(target, "nfs", op=op, args=args,
                                            timeout=RPC_TIMEOUT_MS,
                                            size_bytes=size_bytes,
                                            tag=f"nfs.{op}")
                except (RpcTimeout, Unreachable, RpcRemoteError) as exc:
                    last_exc = exc
                    failures += 1
                    if to is not None:
                        if on_target_fail is not None:
                            on_target_fail(target)
                        to = None  # routed target failed: fall back to server
                        continue
                    if not self.config.failover:
                        break
                    self.current = (self.current + 1) % len(self.servers)
                    self.metrics.incr("agent.failovers")
                    continue
                status = reply["status"]
                if status == NfsStat.ERR_BUSY and busy_left > 0:
                    # admission backpressure: back off and retry the same
                    # server without spending the failover budget
                    busy_left -= 1
                    self.metrics.incr("agent.busy_retries")
                    await kernel.sleep(busy_wait)
                    busy_wait = min(busy_wait * 2.0,
                                    self.config.busy_backoff_cap_ms)
                    continue
                if status != 0:
                    raise NfsError(status, reply.get("error", ""))
                return reply
            raise nfs_error(NfsStat.ERR_IO,
                            f"no server reachable for {op}: {last_exc}")
        finally:
            if traced is not None:
                tracer.record(tid, t0, kernel.now, "agent", f"nfs.{op}")
                traced.trace = prev_trace

    async def _cmd(self, cmd: str, args: dict[str, Any]) -> dict:
        await self._user_hop()
        reply = await self.call(self.server, "deceit_cmd", cmd=cmd, args=args,
                                timeout=RPC_TIMEOUT_MS, tag=f"cmd.{cmd}")
        if reply["status"] != 0:
            raise NfsError(reply["status"], reply.get("error", ""))
        return reply

    # ------------------------------------------------------------------ #
    # mount and path resolution
    # ------------------------------------------------------------------ #

    async def mount(self) -> FileHandle:
        """Fetch the root handle from the connected server."""
        await self._user_hop()
        reply = await self.call(self.server, "nfs_root",
                                timeout=RPC_TIMEOUT_MS, tag="mount")
        if reply["status"] != 0:
            raise NfsError(reply["status"], reply.get("error", ""))
        self.root_fh = FileHandle.decode(reply["fh"])
        return self.root_fh

    async def lookup_path(self, path: str) -> FileHandle:
        """Walk a slash path from the root, one LOOKUP per component."""
        if self.root_fh is None:
            await self.mount()
        if self.config.cache and path in self._handle_cache:
            self.metrics.incr("agent.handle_cache_hits")
            return self._handle_cache[path]
        fh = self.root_fh
        walked: list[str] = []
        for part in split_path(path):
            walked.append(part)
            prefix = "/" + "/".join(walked)
            if self.config.cache and prefix in self._handle_cache:
                fh = self._handle_cache[prefix]
                continue
            cached = self._lookup_cached(fh, part)
            if cached is not None:
                hit_fh, _entry = cached
                fh = hit_fh
                if self.config.cache:
                    self._handle_cache[prefix] = fh
                continue
            try:
                reply = await self._nfs("lookup", {"fh": fh.encode(),
                                                   "name": part})
            except NfsError as exc:
                if exc.status == NfsStat.ERR_NOENT and self.config.cache \
                        and ";" not in part:
                    self._remember_negative(fh.encode(), part)
                raise
            fh = FileHandle.decode(reply["fh"])
            if self.config.cache:
                self._handle_cache[prefix] = fh
                self._remember_attrs(fh, FileAttrs.from_wire(reply["attrs"]))
        return fh

    def _lookup_cached(self, dirfh: FileHandle,
                       name: str) -> tuple[FileHandle, dict] | None:
        """Resolve one component from the agent-side directory caches.

        Two sources, both fed by this agent's own traffic: a fresh
        negative-lookup entry answers the repeat miss (raising ERR_NOENT
        with no RPC), and a fresh cached listing answers both hits and
        misses — a listed name yields its handle, an unlisted one is a
        authoritative-as-of-that-version miss.  Version-qualified names
        (``foo;3``) always go to the server.
        """
        if not self.config.cache or ";" in name:
            return None
        key = dirfh.encode()
        if self._neg_cache.get((key, name), 0.0) > self.kernel.now:
            self.metrics.incr("agent.neg_lookup_hits")
            raise nfs_error(NfsStat.ERR_NOENT, f"{name} (cached miss)")
        cached = self._dir_cache.get(key)
        if cached and cached[1] > self.kernel.now:
            entry = next((e for e in cached[0] if e["name"] == name), None)
            if entry is None:
                self.metrics.incr("agent.neg_lookup_hits")
                raise nfs_error(NfsStat.ERR_NOENT,
                                f"{name} (not in cached listing)")
            self.metrics.incr("agent.dir_cache_hits")
            return FileHandle.decode(entry["fh"]), entry
        return None

    def _remember_attrs(self, fh: FileHandle, attrs: FileAttrs) -> None:
        self._attr_cache[fh.encode()] = (attrs, self.kernel.now +
                                         self.config.attr_ttl_ms)

    def _invalidate(self, fh: FileHandle) -> None:
        key = fh.encode()
        self._attr_cache.pop(key, None)
        self._data_cache.pop(key, None)
        self._range_cache.pop(key, None)
        self._cache_gen[key] = self._cache_gen.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    # readdir / negative-lookup cache upkeep (fed by dirop results)
    # ------------------------------------------------------------------ #

    def _feed_dir_cache(self, dirfh: FileHandle, name: str,
                        entry: dict | None, dir_version) -> None:
        """Fold one of this agent's own directory mutations into the caches.

        ``entry`` is the listing row the name now maps to (``None`` =
        removed); ``dir_version`` is the directory's post-op version pair
        from the mutation reply.  The cached listing is patched in place
        **only** when the new version is the immediate successor of the
        cached one — i.e. this mutation was provably the only change since
        the listing was taken; anything else (a gap means other clients
        mutated in between, a missing version means the fallback path ran)
        drops the listing so the next readdir refetches.
        """
        if not self.config.cache:
            return
        key = dirfh.encode()
        if entry is not None:
            self._neg_cache.pop((key, name), None)
        else:
            self._remember_negative(key, name)
        cached = self._dir_cache.get(key)
        if cached is None:
            return
        entries, _expiry, version = cached
        new_version = tuple(dir_version) if dir_version is not None else None
        contiguous = (new_version is not None and version is not None
                      and new_version[0] == version[0]
                      and new_version[1] == version[1] + 1)
        if not contiguous:
            self._dir_cache.pop(key, None)
            return
        entries = [e for e in entries if e["name"] != name]
        if entry is not None:
            entries.append(dict(entry))
            entries.sort(key=lambda e: e["name"])
        self._dir_cache[key] = (entries,
                                self.kernel.now + self.config.attr_ttl_ms,
                                new_version)
        self.metrics.incr("agent.dir_cache_patched")

    def _remember_negative(self, dirkey: str, name: str) -> None:
        """Record a miss, keeping the map bounded — distinct missed names
        are unbounded, live files are not.  Expired entries are swept
        first; if everything is still live, the soonest-to-expire half is
        evicted (a re-miss just re-asks the server)."""
        now = self.kernel.now
        if len(self._neg_cache) >= 512:
            self._neg_cache = {k: exp for k, exp in self._neg_cache.items()
                               if exp > now}
            if len(self._neg_cache) >= 512:
                by_expiry = sorted(self._neg_cache.items(),
                                   key=lambda item: item[1])
                self._neg_cache = dict(by_expiry[len(by_expiry) // 2:])
        self._neg_cache[(dirkey, name)] = now + self.config.attr_ttl_ms

    def _note_new_entry(self, dirfh: FileHandle, name: str, ftype: str,
                        raw_fh: str, dir_version) -> None:
        """Fold a successful create/mkdir/symlink/link into the caches."""
        self._feed_dir_cache(dirfh, name,
                             {"name": name, "type": ftype, "fh": raw_fh},
                             dir_version)

    # ------------------------------------------------------------------ #
    # file operations
    # ------------------------------------------------------------------ #

    async def getattr(self, path_or_fh: str | FileHandle) -> FileAttrs:
        """Attributes, served from the agent cache when fresh.

        Buffered write-behind bytes are reflected in the returned size
        (read-your-writes covers attributes too)."""
        fh = await self._resolve(path_or_fh)
        key = fh.encode()
        attrs = None
        if self.config.cache:
            cached = self._attr_cache.get(key)
            if cached and cached[1] > self.kernel.now:
                self.metrics.incr("agent.attr_cache_hits")
                attrs = cached[0]
        if attrs is None:
            reply = await self._nfs("getattr", {"fh": key})
            attrs = FileAttrs.from_wire(reply["attrs"])
            if self.config.cache:
                self._remember_attrs(fh, attrs)
        buf = self._write_buffers.get(key)
        if buf is not None and buf.dirty:
            # copy: the overlay must not poison the cached server attrs
            attrs = dc_replace(attrs, size=buf.extent(attrs.size))
        return attrs

    async def _resolve(self, path_or_fh: str | FileHandle) -> FileHandle:
        if isinstance(path_or_fh, FileHandle):
            return path_or_fh
        return await self.lookup_path(path_or_fh)

    async def read_file(self, path_or_fh: str | FileHandle) -> bytes:
        """Whole-file read (the dominant access pattern, §2.3).

        Served from the agent cache while the TTL is fresh; once it lapses
        the cached copy is *revalidated by version pair* rather than thrown
        away — the server replies "unchanged" without payload bytes when
        the file is still at the cached version (version-exact
        invalidation, §3.5's version inquiry put to work).
        """
        fh = await self._resolve(path_or_fh)
        key = fh.encode()
        buf = self._write_buffers.get(key)
        if buf is not None and buf.whole is not None:
            # read-your-writes: the buffered image IS the current contents
            self.metrics.incr("agent.wb_read_your_writes")
            return buf.whole
        cached = self._data_cache.get(key) if self.config.cache else None
        if cached and cached[1] > self.kernel.now:
            self.metrics.incr("agent.data_cache_hits")
            if buf is not None and buf.patches:
                self.metrics.incr("agent.wb_read_your_writes")
                return buf.overlay(cached[0])
            return cached[0]
        if self.config.cache:
            self.metrics.incr("agent.data_cache_misses")
        hint = self._stripe_hint(key)
        if hint is not None and hint[1] > hint[0]:
            # striped file: gather it in parallel, one ranged read per
            # stripe, instead of shipping the whole image through one reply
            data, version = await self._read_striped(key, *hint)
        else:
            args: dict[str, Any] = {"fh": key}
            if cached and cached[2] is not None and self.config.version_validate:
                args["verify"] = list(cached[2])
            to = await self._route_target(fh)
            reply = await self._nfs("read", args, to=to,
                                    on_target_fail=lambda t:
                                    self._forget_route(fh.sid))
            self._learn_placement(fh, reply)
            version = tuple(reply["version"]) if "version" in reply else None
            if reply.get("unchanged") and cached:
                self.metrics.incr("agent.data_cache_revalidations")
                data = cached[0]
            else:
                data = reply["data"]
        if self.config.cache:
            self._data_cache[key] = (data, self.kernel.now +
                                     self.config.data_ttl_ms, version)
        if buf is not None and buf.patches:
            # overlay buffered positioned writes on the fetched base; the
            # data cache above keeps the *server's* copy (version-exact)
            self.metrics.incr("agent.wb_read_your_writes")
            return buf.overlay(data)
        return data

    # ------------------------------------------------------------------ #
    # ranged reads, striped fan-out, and readahead
    # ------------------------------------------------------------------ #

    def _stripe_hint(self, key: str) -> tuple[int, int] | None:
        """(stripe_size, size) when fresh cached attrs say the file is
        striped — the piggybacked hint every attr-bearing reply carries."""
        if not self.config.cache:
            return None
        cached = self._attr_cache.get(key)
        if cached and cached[1] > self.kernel.now and cached[0].stripe_size:
            return cached[0].stripe_size, cached[0].size
        return None

    async def _read_striped(self, key: str, stripe_size: int,
                            size: int) -> tuple[bytes, tuple | None]:
        """Whole-file read of a striped file: parallel per-stripe ranged
        reads, reassembled by offset.

        The hinted size may be stale, so while the last stripe comes back
        full the tail is chased with further reads; a shrunken file simply
        returns less.  Holes read as zeros (the server pads interior
        ranges), so placing each piece at its own offset is exact.

        Atomicity: every range reply carries the *parent's* version pair,
        and every whole-image change (rewrite, restripe, conversion) bumps
        it — so if the replies disagree, a flip landed mid-fan-out and the
        reassembly would be a hybrid of old and new contents.  The read
        then falls back to one whole-file RPC, whose server-side gather
        resolves the map once.
        """
        self.metrics.incr("agent.striped_reads")

        async def one(index: int) -> dict:
            return await self._nfs("read", {"fh": key,
                                            "offset": index * stripe_size,
                                            "count": stripe_size})

        count = max(1, -(-size // stripe_size))
        tasks = [self.spawn(one(i), name=f"{self.addr}:fanout:{i}")
                 for i in range(count)]
        replies = list(await self.kernel.all_of(tasks))
        # chase the tail only while the server-reported length says bytes
        # exist past what we fetched (the file grew since the hint)
        known = max([size] + [int(r.get("size", 0)) for r in replies])
        while replies[-1]["data"] and len(replies[-1]["data"]) == stripe_size \
                and len(replies) * stripe_size < known:
            reply = await one(len(replies))
            replies.append(reply)
            known = max(known, int(reply.get("size", 0)))
        self.metrics.incr("agent.striped_fanout_parts", len(replies))
        versions = {tuple(r["version"]) for r in replies if "version" in r}
        if len(versions) != 1:
            self.metrics.incr("agent.striped_read_fallbacks")
            reply = await self._nfs("read", {"fh": key})
            return reply["data"], tuple(reply["version"])
        end = 0
        for i, reply in enumerate(replies):
            if reply["data"]:
                end = max(end, i * stripe_size + len(reply["data"]))
        image = bytearray(end)
        for i, reply in enumerate(replies):
            piece = reply["data"]
            image[i * stripe_size:i * stripe_size + len(piece)] = piece
        return bytes(image), versions.pop()

    async def read_at(self, path_or_fh: str | FileHandle, offset: int,
                      count: int) -> bytes:
        """Ranged read: ``count`` bytes from ``offset`` (fewer at EOF).

        Striped files whose range spans several stripes fan the pieces out
        in parallel; sequential scans arm the next-stripe readahead so the
        following request is served from agent memory.  Buffered
        write-behind bytes are visible (read-your-writes).
        """
        fh = await self._resolve(path_or_fh)
        key = fh.encode()
        self.metrics.incr("agent.range_reads")
        if count <= 0:
            return b""
        buf = self._write_buffers.get(key)
        if buf is not None and buf.dirty:
            # read-your-writes without whole-file cost: a buffered image
            # answers directly; buffered patches overlay the fetched range
            self.metrics.incr("agent.wb_read_your_writes")
            if buf.whole is not None:
                return buf.whole[offset:offset + count]
            base = await self._range_base(fh, key, offset, count)
            return buf.overlay_range(base, offset, count)
        return await self._range_base(fh, key, offset, count)

    async def _range_base(self, fh: FileHandle, key: str, offset: int,
                          count: int) -> bytes:
        """The server's bytes for one range: agent caches, then the
        readahead range cache, then RPC (fanned out across stripes)."""
        cached = self._data_cache.get(key) if self.config.cache else None
        if cached and cached[1] > self.kernel.now:
            self.metrics.incr("agent.data_cache_hits")
            return cached[0][offset:offset + count]
        ra = self._range_cache.get(key)
        if ra is not None and ra[2] > self.kernel.now and \
                ra[0] <= offset and offset + count <= ra[0] + len(ra[1]):
            self.metrics.incr("agent.readahead_hits")
            data = ra[1][offset - ra[0]:offset - ra[0] + count]
            self._note_sequential(fh, key, offset, count)
            return data
        hint = self._stripe_hint(key)
        if hint is not None and \
                offset // hint[0] != (offset + count - 1) // hint[0]:
            data = await self._fanout_range(key, hint[0], offset, count)
        else:
            to = await self._route_target(fh)
            reply = await self._nfs(
                "read", {"fh": key, "offset": offset, "count": count},
                to=to, on_target_fail=lambda t: self._forget_route(fh.sid))
            self._learn_placement(fh, reply)
            data = reply["data"]
        self._note_sequential(fh, key, offset, count)
        return data

    async def _fanout_range(self, key: str, stripe_size: int, offset: int,
                            count: int) -> bytes:
        """A multi-stripe range read, one parallel piece per stripe.

        Like :meth:`_read_striped`, disagreeing parent versions across the
        replies mean a whole-image flip landed mid-fan-out; the range is
        then re-read as one RPC so the server resolves the map once.
        """
        pieces = split_range(offset, offset + count, stripe_size)
        self.metrics.incr("agent.striped_fanout_parts", len(pieces))

        async def one(o: int, c: int) -> dict:
            return await self._nfs("read", {"fh": key, "offset": o,
                                            "count": c})

        tasks = [self.spawn(one(o, c), name=f"{self.addr}:fanout-range")
                 for o, c in pieces]
        replies = await self.kernel.all_of(tasks)
        versions = {tuple(r["version"]) for r in replies if "version" in r}
        if len(versions) > 1:
            self.metrics.incr("agent.striped_read_fallbacks")
            reply = await self._nfs("read", {"fh": key, "offset": offset,
                                             "count": count})
            return reply["data"]
        # interior short pieces were padded by the server (sparse holes);
        # a short trailing piece is EOF — concatenation is exact
        out = bytearray()
        for (o, _c), reply in zip(pieces, replies):
            part = reply["data"]
            rel = o - offset
            if part:
                if rel > len(out):
                    out.extend(b"\x00" * (rel - len(out)))
                out[rel:rel + len(part)] = part
        return bytes(out)

    def _note_sequential(self, fh: FileHandle, key: str, offset: int,
                         count: int) -> None:
        """Track the scan position; a read continuing exactly where the
        last one ended arms a background prefetch of the next stripe."""
        # a scan starting at the beginning of the file counts as sequential
        # from its first read
        sequential = self._seq_read.get(key, 0) == offset
        self._seq_read[key] = offset + count
        if not sequential or not self.config.readahead:
            return
        hint = self._stripe_hint(key)
        if hint is None:
            return
        next_off = offset + count
        if next_off >= hint[1]:
            return                       # the scan reached the hinted EOF
        ra = self._range_cache.get(key)
        if ra is not None and ra[2] > self.kernel.now and \
                ra[0] <= next_off < ra[0] + len(ra[1]):
            return                       # already prefetched past here
        self.metrics.incr("agent.readahead_prefetches")
        self.spawn(self._prefetch(key, next_off, hint[0]),
                   name=f"{self.addr}:readahead")

    async def _prefetch(self, key: str, offset: int, length: int) -> None:
        gen = self._cache_gen.get(key, 0)
        try:
            reply = await self._nfs("read", {"fh": key, "offset": offset,
                                             "count": length})
        except NfsError:
            return                       # readahead is strictly best-effort
        if self._cache_gen.get(key, 0) != gen:
            # a write invalidated this handle while the prefetch was in
            # flight: storing the reply would resurrect pre-write bytes
            return
        self._range_cache[key] = (offset, reply["data"],
                                  self.kernel.now + self.config.data_ttl_ms)

    async def _route_target(self, fh: FileHandle) -> str | None:
        """Where to aim a read: a hinted replica holder, the §5.3 shortcut
        target, or ``None`` for the plain mount-server path."""
        if self.config.route_hints and not fh.foreign:
            holders = self._placement_cache.get(fh.sid)
            if holders:
                if self.server in holders:
                    return None  # the mount server already holds a replica
                self.metrics.incr("agent.routed_reads")
                return holders[0]
        return await self._shortcut_target(fh)

    def _learn_placement(self, fh: FileHandle, reply: dict) -> None:
        """Absorb the placement hint piggybacked on a read reply."""
        if not self.config.route_hints or fh.foreign:
            return
        hint = reply.get("placement")
        if not hint:
            return
        holders = sorted(hint.get("holders") or [])
        if not holders:
            return
        served = hint.get("served_by")
        if served in holders:  # the server that answered goes first
            holders.remove(served)
            holders.insert(0, served)
        self._placement_cache[fh.sid] = holders
        self.metrics.incr("agent.placement_hints")

    def _forget_route(self, sid: str) -> None:
        """A routed target failed: drop what we believed about it."""
        self._placement_cache.pop(sid, None)
        self._location_cache.pop(sid, None)

    async def _shortcut_target(self, fh: FileHandle) -> str | None:
        """Access shortcut: read directly from a replica holder (§5.3)."""
        if not self.config.shortcut or fh.foreign:
            return None
        key = fh.sid
        if key not in self._location_cache:
            try:
                reply = await self._cmd("locate", {"fh": fh.encode()})
            except NfsError:
                return None
            holders = reply["located"]["holders"]
            if not holders:
                return None
            self._location_cache[key] = holders[0]
            self.metrics.incr("agent.shortcuts_learned")
        return self._location_cache[key]

    async def write_file(self, path_or_fh: str | FileHandle,
                         data: bytes) -> FileAttrs:
        """Whole-file write (§2.3's dominant pattern): one atomic
        truncate-and-write NFS round.

        The ``truncate`` flag makes the server replace the contents in a
        single ``setdata`` segment update — one round, one version bump,
        and no window where a concurrent reader sees an empty file or a
        crash loses the old bytes without producing the new ones.  With
        ``write_behind`` enabled the image is buffered instead (see
        :meth:`_buffer_write`).
        """
        fh = await self._resolve(path_or_fh)
        if self.config.write_behind:
            return await self._buffer_write(fh, whole=data)
        return await self._write_through(
            fh, {"fh": fh.encode(), "offset": 0, "data": data,
                 "truncate": True}, size=len(data))

    async def write_at(self, path_or_fh: str | FileHandle, offset: int,
                       data: bytes) -> FileAttrs:
        """Positioned write (buffered and coalesced under write-behind)."""
        fh = await self._resolve(path_or_fh)
        if self.config.write_behind:
            return await self._buffer_write(fh, offset=offset, data=data)
        return await self._write_through(
            fh, {"fh": fh.encode(), "offset": offset, "data": data},
            size=len(data))

    async def _write_through(self, fh: FileHandle, args: dict[str, Any],
                             size: int) -> FileAttrs:
        reply = await self._nfs("write", args, size_bytes=max(256, size))
        self._invalidate(fh)
        attrs = FileAttrs.from_wire(reply["attrs"])
        if self.config.cache:
            self._remember_attrs(fh, attrs)
        return attrs

    # ------------------------------------------------------------------ #
    # write-behind: buffer / coalesce / flush
    # ------------------------------------------------------------------ #

    async def _buffer_write(self, fh: FileHandle, whole: bytes | None = None,
                            offset: int = 0, data: bytes = b"") -> FileAttrs:
        """Buffer one write; the ack point follows the file's write_safety.

        Safety 0 (asynchronous unsafe writes, §4) acks as soon as the
        bytes are in the buffer and relies on the TTL flush.  Safety >= 1
        arms a short group-commit window and awaits the flush — every
        writer that joins the window shares one batched update, and each
        returns only once the server has collected ``write_safety``
        replica replies for it.
        """
        key = fh.encode()
        # resolve the ack point FIRST: everything from buffer-fill to the
        # flush arm/await below is then one atomic (await-free) block, so
        # a concurrent flush can never take the bytes without also taking
        # the rendezvous future a safety >= 1 writer awaits
        safety = await self._write_safety(fh)
        buf = self._write_buffers.get(key)
        if buf is None:
            buf = self._write_buffers[key] = _WriteBuffer()
            self._wb_handles[key] = fh
        hint = self._stripe_hint(key)
        if hint is not None:
            buf.stripe_hint = hint
        if not buf.dirty:
            # remember the pre-buffer size so synthesized attrs for
            # positioned writes don't report the file shrunk to the patch
            cached_attrs = self._attr_cache.get(key)
            cached_data = self._data_cache.get(key)
            buf.base_size = (cached_attrs[0].size if cached_attrs
                             else len(cached_data[0]) if cached_data else 0)
        if whole is not None:
            buf.set_whole(whole)
        else:
            buf.add_patch(offset, data)
        self.metrics.incr("agent.wb_buffered_writes")
        # buffered bytes supersede whatever the caches say about this file
        self._data_cache.pop(key, None)
        self._attr_cache.pop(key, None)
        if safety == 0:
            self._arm_flush(key, self.config.write_behind_ttl_ms)
            return self._buffered_attrs(buf)
        fut = buf.pending_fut
        if fut is None:
            fut = buf.pending_fut = self.kernel.create_future()
        self._arm_flush(key, self.config.write_behind_window_ms)
        return await fut

    def _arm_flush(self, key: str, delay_ms: float) -> None:
        buf = self._write_buffers[key]
        if buf.armed is not None:
            return
        buf.armed = self.kernel.schedule(
            delay_ms, lambda: self.kernel.spawn(
                self._flush_buffer(key), name=f"{self.addr}:wb-flush"))

    async def _flush_buffer(self, key: str):
        """Flush one handle's buffer as a single batched NFS write.

        Returns the (already resolved) flush future, or ``None`` when
        there was nothing to flush.  Never raises: failures resolve the
        future (delivered to any safety >= 1 writers awaiting it) and,
        for fire-and-forget safety-0 flushes, are deferred to the next
        explicit ``flush()``/``close()``.
        """
        buf = self._write_buffers.get(key)
        if buf is None:
            return None
        if buf.armed is not None:
            buf.armed.cancel()
            buf.armed = None
        while buf.inflight is not None:
            inflight = buf.inflight
            try:
                await inflight
            except NfsError:
                pass          # that flush's awaiters already received it
            if buf.inflight is inflight:
                buf.inflight = None
        if not buf.dirty:
            return None
        had_waiters = buf.pending_fut is not None
        fut = buf.pending_fut or self.kernel.create_future()
        buf.pending_fut = None
        buf.inflight = fut
        whole, patches = buf.whole, buf.patches
        n_ops = buf.buffered_ops
        buf.whole, buf.patches, buf.buffered_ops = None, [], 0
        fh = self._wb_handles[key]
        try:
            reply = await self._send_flush(key, whole, patches,
                                           buf.stripe_hint)
        except NfsError as exc:
            buf.inflight = None
            if not had_waiters:
                self._wb_errors.setdefault(key, []).append(exc)
            if not fut.done():
                fut.set_exception(exc)
            return fut
        buf.inflight = None
        self.metrics.incr("agent.wb_flushes")
        if n_ops > 1:
            self.metrics.incr("agent.wb_writes_coalesced", n_ops - 1)
        self._invalidate(fh)
        attrs = FileAttrs.from_wire(reply["attrs"])
        if self.config.cache:
            self._remember_attrs(fh, attrs)
        if not fut.done():
            fut.set_result(attrs)
        return fut

    async def _send_flush(self, key: str, whole: bytes | None,
                          patches: list[tuple[int, bytes]],
                          stripe_hint: tuple[int, int] | None) -> dict:
        """Ship one buffer's contents to the server(s).

        A whole-file image goes as one truncating write.  Patches of a
        *striped* file that fall in several stripes go as one write per
        stripe, in parallel — each lands on its own stripe's write token,
        so two agents flushing disjoint regions of one file never touch
        the same token (and the flush's latency is the slowest stripe,
        not the sum).  Everything else is the single batched write.
        """
        if whole is not None:
            return await self._nfs("write",
                                   {"fh": key, "offset": 0, "data": whole,
                                    "truncate": True},
                                   size_bytes=max(256, len(whole)))
        groups = (_split_at_stripes(patches, stripe_hint[0])
                  if stripe_hint is not None else {0: patches})
        if len(groups) > 1:
            self.metrics.incr("agent.wb_stripe_flushes", len(groups))
            tasks = [self.spawn(self._write_rpc(key, plist),
                                name=f"{self.addr}:wb-stripe")
                     for _index, plist in sorted(groups.items())]
            replies = await self.kernel.all_of(tasks)
            # the largest reported size reflects the final extent; the
            # per-group attrs only differ in what that group observed
            return max(replies, key=lambda r: r["attrs"]["size"])
        return await self._write_rpc(key, patches)

    async def _write_rpc(self, key: str,
                         patches: list[tuple[int, bytes]]) -> dict:
        if len(patches) == 1:
            args: dict[str, Any] = {"fh": key, "offset": patches[0][0],
                                    "data": patches[0][1]}
            size = len(patches[0][1])
        else:
            args = {"fh": key, "ops": [{"offset": off, "data": data}
                                       for off, data in patches]}
            size = sum(len(data) for _off, data in patches)
        return await self._nfs("write", args, size_bytes=max(256, size))

    async def flush(self, path_or_fh: str | FileHandle | None = None) -> None:
        """Flush write-behind buffers — one handle's, or every dirty one.

        Raises the first failure, including deferred errors from earlier
        asynchronous (safety-0) TTL flushes — the ``fsync`` contract.
        """
        if path_or_fh is None:
            keys = sorted(set(self._write_buffers) | set(self._wb_errors))
        else:
            fh = await self._resolve(path_or_fh)
            keys = [fh.encode()]
        failure: NfsError | None = None
        for key in keys:
            fut = await self._flush_buffer(key)
            if fut is not None:
                try:
                    await fut
                except NfsError as exc:
                    failure = failure or exc
            deferred = self._wb_errors.pop(key, None)
            if deferred and failure is None:
                failure = deferred[0]
        if failure is not None:
            raise failure

    async def close(self, path_or_fh: str | FileHandle) -> None:
        """Flush and release a handle's write-behind buffer."""
        fh = await self._resolve(path_or_fh)
        key = fh.encode()
        try:
            await self.flush(fh)
        finally:
            self._write_buffers.pop(key, None)
            self._wb_handles.pop(key, None)

    async def _write_safety(self, fh: FileHandle) -> int:
        """The file's §4 write_safety level (cached; decides ack points)."""
        cached = self._params_cache.get(fh.sid)
        if cached and cached[1] > self.kernel.now:
            return cached[0]
        try:
            reply = await self._cmd("getparam", {"fh": fh.encode()})
            safety = int(reply["params"]["write_safety"])
        except (NfsError, RpcTimeout, Unreachable, RpcRemoteError):
            # unknown (error or unreachable mount server): conservative,
            # ack on durability — the flush itself goes through _nfs and
            # gets failover, so the write must not fail here
            safety = 1
        self._params_cache[fh.sid] = (
            safety, self.kernel.now + self.config.attr_ttl_ms)
        return safety

    def _buffered_attrs(self, buf: _WriteBuffer) -> FileAttrs:
        """Locally-synthesized attrs for a buffer-acked write (no server
        round has happened; size/mtime reflect the buffered state over
        the best-known base size — mode/owner are defaults)."""
        now = self.kernel.now
        return FileAttrs(ftype=FileType.REGULAR,
                         size=buf.extent(buf.base_size),
                         mtime=now, ctime=now)

    async def create(self, dirpath: str, name: str,
                     sattr: dict | None = None) -> FileHandle:
        """Create a file in the directory at ``dirpath``."""
        dirfh = await self._resolve(dirpath)
        reply = await self._nfs("create", {"fh": dirfh.encode(), "name": name,
                                           "sattr": sattr or {}})
        fh = FileHandle.decode(reply["fh"])
        if self.config.cache:
            self._handle_cache[dirpath.rstrip("/") + "/" + name] = fh
        self._note_new_entry(dirfh, name, "reg", reply["fh"],
                             reply.get("dir_version"))
        return fh

    async def mkdir(self, dirpath: str, name: str) -> FileHandle:
        """Create a directory."""
        dirfh = await self._resolve(dirpath)
        reply = await self._nfs("mkdir", {"fh": dirfh.encode(), "name": name})
        fh = FileHandle.decode(reply["fh"])
        if self.config.cache:
            self._handle_cache[dirpath.rstrip("/") + "/" + name] = fh
        self._note_new_entry(dirfh, name, "dir", reply["fh"],
                             reply.get("dir_version"))
        return fh

    async def symlink(self, dirpath: str, name: str, target: str) -> FileHandle:
        """Create a soft link."""
        dirfh = await self._resolve(dirpath)
        reply = await self._nfs("symlink", {"fh": dirfh.encode(), "name": name,
                                            "target": target})
        self._note_new_entry(dirfh, name, "lnk", reply["fh"],
                             reply.get("dir_version"))
        return FileHandle.decode(reply["fh"])

    async def readlink(self, path_or_fh: str | FileHandle) -> str:
        """Read a soft link's target."""
        fh = await self._resolve(path_or_fh)
        return (await self._nfs("readlink", {"fh": fh.encode()}))["target"]

    def _prune_handle_cache(self, path: str) -> None:
        """Drop the cached handle for ``path`` AND every cached descendant.

        After a rename or removal of a directory, paths *under* it must
        stop resolving through stale cached handles — popping only the
        exact key would leave ``<path>/...`` entries pointing at live
        handles for names that no longer exist.
        """
        path = path.rstrip("/")
        prefix = path + "/"
        for cached in list(self._handle_cache):
            if cached == path or cached.startswith(prefix):
                del self._handle_cache[cached]

    async def remove(self, dirpath: str, name: str) -> None:
        """Unlink a file."""
        dirfh = await self._resolve(dirpath)
        target = self._handle_cache.get(dirpath.rstrip("/") + "/" + name)
        reply = await self._nfs("remove", {"fh": dirfh.encode(), "name": name})
        self._prune_handle_cache(dirpath.rstrip("/") + "/" + name)
        if target is not None:
            self._invalidate(target)    # nlink/ctime changed (or file gone)
        self._invalidate(dirfh)
        self._feed_dir_cache(dirfh, name, None, reply.get("dir_version"))

    async def rmdir(self, dirpath: str, name: str) -> None:
        """Remove an empty directory."""
        dirfh = await self._resolve(dirpath)
        removed = self._handle_cache.get(dirpath.rstrip("/") + "/" + name)
        reply = await self._nfs("rmdir", {"fh": dirfh.encode(), "name": name})
        self._prune_handle_cache(dirpath.rstrip("/") + "/" + name)
        self._invalidate(dirfh)
        self._feed_dir_cache(dirfh, name, None, reply.get("dir_version"))
        if removed is not None:
            self._dir_cache.pop(removed.encode(), None)

    async def rename(self, fromdir: str, fromname: str,
                     todir: str, toname: str) -> None:
        """Move/rename a file (or a whole directory subtree)."""
        fromfh = await self._resolve(fromdir)
        tofh = await self._resolve(todir)
        reply = await self._nfs("rename",
                                {"fh": fromfh.encode(), "fromname": fromname,
                                 "tofh": tofh.encode(), "toname": toname})
        # prune descendants of BOTH names: old paths under a renamed
        # directory are dead, and a rename-over replaced the target
        self._prune_handle_cache(fromdir.rstrip("/") + "/" + fromname)
        self._prune_handle_cache(todir.rstrip("/") + "/" + toname)
        self._invalidate(fromfh)
        self._invalidate(tofh)
        versions = reply.get("dir_versions") or {}
        moved = reply.get("moved_entry")
        # to-side first: a same-directory rename bumps the one directory
        # twice (install sub+1, drop sub+2), so the patches only chain as
        # contiguous in server order
        if moved is not None and versions.get("to") is not None:
            # the entry the SERVER says it installed — never this agent's
            # own (possibly stale) cached listing of the source directory
            self._feed_dir_cache(tofh, toname, {"name": toname, **moved},
                                 versions["to"])
        elif moved is None:
            # fallback-path server reply: can't patch the target listing
            self._dir_cache.pop(tofh.encode(), None)
            self._neg_cache.pop((tofh.encode(), toname), None)
        else:
            # POSIX no-op rename (both names already link the same file):
            # nothing changed server-side, the listings stay — but both
            # names provably exist, so negative entries for them are wrong
            self._neg_cache.pop((tofh.encode(), toname), None)
            self._neg_cache.pop((fromfh.encode(), fromname), None)
        if versions.get("from") is not None:
            self._feed_dir_cache(fromfh, fromname, None, versions["from"])
        elif versions.get("to") is not None or moved is None:
            # the server abandoned (or didn't report) the from-side drop —
            # e.g. a concurrent re-create owns the name now; a negative
            # entry would assert a removal that may not have happened.
            # (A no-op rename — both versions None WITH a moved entry —
            # changed nothing, so the caches stay.)
            self._dir_cache.pop(fromfh.encode(), None)
            self._neg_cache.pop((fromfh.encode(), fromname), None)

    async def link(self, filepath: str, todir: str, name: str) -> None:
        """Create a hard link."""
        fh = await self._resolve(filepath)
        tofh = await self._resolve(todir)
        reply = await self._nfs("link", {"fh": fh.encode(),
                                         "tofh": tofh.encode(),
                                         "name": name})
        # the file's nlink/ctime and the directory's contents both changed;
        # without this, getattr serves a stale nlink until the TTL lapses
        self._invalidate(fh)
        self._invalidate(tofh)
        if reply.get("entry_type") is not None:
            # cache the entry as the server recorded it: its real type and
            # the version-unqualified handle (keeping `home` — stripping it
            # would make a foreign entry dispatch locally and mis-resolve)
            self._note_new_entry(tofh, name, reply["entry_type"],
                                 FileHandle(sid=fh.sid, home=fh.home).encode(),
                                 reply.get("dir_version"))
        else:
            self._dir_cache.pop(tofh.encode(), None)
            self._neg_cache.pop((tofh.encode(), name), None)

    async def readdir(self, path_or_fh: str | FileHandle) -> list[dict]:
        """List a directory, served from the agent's readdir cache.

        While the TTL is fresh the cached listing answers locally; once it
        lapses the listing is *revalidated by version pair* instead of
        refetched — the server answers "unchanged" with no entry bytes
        when the directory is still at the cached version.  The cache is
        kept coherent with this agent's own creates/removes/renames by the
        dirop versions riding their replies (:meth:`_feed_dir_cache`).
        """
        fh = await self._resolve(path_or_fh)
        key = fh.encode()
        cached = self._dir_cache.get(key) if self.config.cache else None
        if cached and cached[1] > self.kernel.now:
            self.metrics.incr("agent.dir_cache_hits")
            return [dict(e) for e in cached[0]]
        args: dict[str, Any] = {"fh": key}
        if cached and cached[2] is not None and self.config.version_validate:
            args["verify"] = list(cached[2])
        reply = await self._nfs("readdir", args)
        version = tuple(reply["version"]) if reply.get("version") else None
        if reply.get("unchanged") and cached:
            self.metrics.incr("agent.dir_cache_revalidations")
            entries = cached[0]
        else:
            entries = reply["entries"]
        if self.config.cache:
            self._dir_cache[key] = (entries,
                                    self.kernel.now + self.config.attr_ttl_ms,
                                    version)
        return [dict(e) for e in entries]

    # ------------------------------------------------------------------ #
    # Deceit special commands
    # ------------------------------------------------------------------ #

    async def set_params(self, path_or_fh: str | FileHandle, **changes) -> dict:
        """Tune the file's semantic parameters (§4)."""
        fh = await self._resolve(path_or_fh)
        reply = await self._cmd("setparam", {"fh": fh.encode(),
                                             "changes": changes})
        # cached attrs may now lie about the file's shape (a stripe_size
        # change restripes it in place; the striping hint rides attrs)
        self._invalidate(fh)
        params = reply["params"]
        # keep the write-behind ack-point decision in step with the change
        self._params_cache[fh.sid] = (
            int(params["write_safety"]),
            self.kernel.now + self.config.attr_ttl_ms)
        return params

    async def list_versions(self, path_or_fh: str | FileHandle) -> dict[int, tuple]:
        """All live versions of a file (``foo;3`` names, §3.5)."""
        fh = await self._resolve(path_or_fh)
        reply = await self._cmd("list_versions", {"fh": fh.encode()})
        return {int(m): tuple(v) for m, v in reply["versions"].items()}

    async def locate(self, path_or_fh: str | FileHandle) -> dict:
        """Replica and token locations."""
        fh = await self._resolve(path_or_fh)
        return (await self._cmd("locate", {"fh": fh.encode()}))["located"]

    async def create_replica(self, path_or_fh: str | FileHandle,
                             server: str) -> bool:
        """Explicitly place a replica (generation method 3)."""
        fh = await self._resolve(path_or_fh)
        reply = await self._cmd("create_replica", {"fh": fh.encode(),
                                                   "server": server})
        return reply["created"]

    async def delete_replica(self, path_or_fh: str | FileHandle,
                             server: str) -> bool:
        """Explicitly remove a replica."""
        fh = await self._resolve(path_or_fh)
        reply = await self._cmd("delete_replica", {"fh": fh.encode(),
                                                   "server": server})
        return reply["deleted"]

    async def conflicts(self) -> list[dict]:
        """The well-known conflict log (§3.6)."""
        return (await self._cmd("conflicts", {}))["conflicts"]

    async def reconcile(self, path_or_fh: str | FileHandle, keep: int) -> list[int]:
        """Resolve divergent versions by keeping one major."""
        fh = await self._resolve(path_or_fh)
        return (await self._cmd("reconcile", {"fh": fh.encode(),
                                              "keep": keep}))["dropped"]
