"""The Deceit client agent: user-program-facing file API over NFS RPCs."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.errors import NfsError, NfsStat, RpcTimeout, Unreachable, nfs_error
from repro.net import Network, Node
from repro.net.network import RpcRemoteError
from repro.nfs.attrs import FileAttrs
from repro.nfs.fhandle import FileHandle
from repro.nfs.names import split_path

RPC_TIMEOUT_MS = 600.0


class Placement(Enum):
    """Where the agent runs (Figure 8), fixing the user↔agent hop cost.

    Values are the per-call latency in virtual ms: a kernel procedure call
    is cheap, a user loadable library cheaper still (no kernel crossing),
    and an auxiliary user process pays local IPC both ways.
    """

    KERNEL = 0.05
    USER_LIBRARY = 0.02
    AUX_PROCESS = 0.40

    @property
    def hop_ms(self) -> float:
        """Latency of one user-program → agent crossing."""
        return self.value


@dataclass
class AgentConfig:
    """Feature switches for one agent instance."""

    placement: Placement = Placement.KERNEL
    cache: bool = True
    failover: bool = True
    shortcut: bool = False
    attr_ttl_ms: float = 3000.0
    data_ttl_ms: float = 3000.0
    #: After the TTL expires, revalidate the cached copy by version pair
    #: instead of refetching the payload: the server answers "unchanged"
    #: (no data bytes) when the segment is still at the cached version.
    version_validate: bool = True
    #: The agent-side router: learn replica locations from the placement
    #: hints piggybacked on read replies and send subsequent reads
    #: directly to a current replica holder instead of always the mount
    #: server.  Unlike ``shortcut`` (§5.3) it costs no extra ``locate``
    #: RPC — hints ride replies the agent receives anyway.
    route_hints: bool = False


class Agent(Node):
    """A client machine running the agent.

    The public methods mirror what a user program does through the kernel
    VFS: path-based file operations.  All remote work goes through the NFS
    protocol to the currently connected server.
    """

    def __init__(self, network: Network, addr: str, servers: list[str],
                 config: AgentConfig | None = None):
        super().__init__(network, addr)
        if not servers:
            raise ValueError("agent needs at least one server address")
        self.servers = list(servers)
        self.config = config or AgentConfig()
        self.current = 0
        self.root_fh: FileHandle | None = None
        self._attr_cache: dict[str, tuple[FileAttrs, float]] = {}
        # fh -> (data, expiry, version pair or None)
        self._data_cache: dict[str, tuple[bytes, float, tuple | None]] = {}
        self._handle_cache: dict[str, FileHandle] = {}
        self._location_cache: dict[str, str] = {}
        # sid -> replica holders, learned from read-reply placement hints
        # (preferred holder first)
        self._placement_cache: dict[str, list[str]] = {}
        self.metrics = network.metrics

    # ------------------------------------------------------------------ #
    # transport with failover
    # ------------------------------------------------------------------ #

    @property
    def server(self) -> str:
        """Address of the currently connected server."""
        return self.servers[self.current]

    async def _user_hop(self) -> None:
        await self.kernel.sleep(self.config.placement.hop_ms)

    async def _nfs(self, op: str, args: dict[str, Any],
                   to: str | None = None, size_bytes: int = 256,
                   on_target_fail=None) -> dict:
        """One NFS RPC, with failover across servers when enabled."""
        await self._user_hop()
        attempts = len(self.servers) if self.config.failover else 1
        if to is not None:
            attempts += 1  # a failed routed target must not eat the budget
        last_exc: Exception | None = None
        for _try in range(attempts):
            target = to if to is not None else self.server
            try:
                reply = await self.call(target, "nfs", op=op, args=args,
                                        timeout=RPC_TIMEOUT_MS,
                                        size_bytes=size_bytes, tag=f"nfs.{op}")
            except (RpcTimeout, Unreachable, RpcRemoteError) as exc:
                last_exc = exc
                if to is not None:
                    if on_target_fail is not None:
                        on_target_fail(target)
                    to = None  # routed target failed: fall back to server
                    continue
                if not self.config.failover:
                    break
                self.current = (self.current + 1) % len(self.servers)
                self.metrics.incr("agent.failovers")
                continue
            if reply["status"] != 0:
                raise NfsError(reply["status"], reply.get("error", ""))
            return reply
        raise nfs_error(NfsStat.ERR_IO,
                        f"no server reachable for {op}: {last_exc}")

    async def _cmd(self, cmd: str, args: dict[str, Any]) -> dict:
        await self._user_hop()
        reply = await self.call(self.server, "deceit_cmd", cmd=cmd, args=args,
                                timeout=RPC_TIMEOUT_MS, tag=f"cmd.{cmd}")
        if reply["status"] != 0:
            raise NfsError(reply["status"], reply.get("error", ""))
        return reply

    # ------------------------------------------------------------------ #
    # mount and path resolution
    # ------------------------------------------------------------------ #

    async def mount(self) -> FileHandle:
        """Fetch the root handle from the connected server."""
        await self._user_hop()
        reply = await self.call(self.server, "nfs_root",
                                timeout=RPC_TIMEOUT_MS, tag="mount")
        if reply["status"] != 0:
            raise NfsError(reply["status"], reply.get("error", ""))
        self.root_fh = FileHandle.decode(reply["fh"])
        return self.root_fh

    async def lookup_path(self, path: str) -> FileHandle:
        """Walk a slash path from the root, one LOOKUP per component."""
        if self.root_fh is None:
            await self.mount()
        if self.config.cache and path in self._handle_cache:
            self.metrics.incr("agent.handle_cache_hits")
            return self._handle_cache[path]
        fh = self.root_fh
        walked: list[str] = []
        for part in split_path(path):
            walked.append(part)
            prefix = "/" + "/".join(walked)
            if self.config.cache and prefix in self._handle_cache:
                fh = self._handle_cache[prefix]
                continue
            reply = await self._nfs("lookup", {"fh": fh.encode(), "name": part})
            fh = FileHandle.decode(reply["fh"])
            if self.config.cache:
                self._handle_cache[prefix] = fh
                self._remember_attrs(fh, FileAttrs.from_wire(reply["attrs"]))
        return fh

    def _remember_attrs(self, fh: FileHandle, attrs: FileAttrs) -> None:
        self._attr_cache[fh.encode()] = (attrs, self.kernel.now +
                                         self.config.attr_ttl_ms)

    def _invalidate(self, fh: FileHandle) -> None:
        self._attr_cache.pop(fh.encode(), None)
        self._data_cache.pop(fh.encode(), None)

    # ------------------------------------------------------------------ #
    # file operations
    # ------------------------------------------------------------------ #

    async def getattr(self, path_or_fh: str | FileHandle) -> FileAttrs:
        """Attributes, served from the agent cache when fresh."""
        fh = await self._resolve(path_or_fh)
        key = fh.encode()
        if self.config.cache:
            cached = self._attr_cache.get(key)
            if cached and cached[1] > self.kernel.now:
                self.metrics.incr("agent.attr_cache_hits")
                return cached[0]
        reply = await self._nfs("getattr", {"fh": key})
        attrs = FileAttrs.from_wire(reply["attrs"])
        if self.config.cache:
            self._remember_attrs(fh, attrs)
        return attrs

    async def _resolve(self, path_or_fh: str | FileHandle) -> FileHandle:
        if isinstance(path_or_fh, FileHandle):
            return path_or_fh
        return await self.lookup_path(path_or_fh)

    async def read_file(self, path_or_fh: str | FileHandle) -> bytes:
        """Whole-file read (the dominant access pattern, §2.3).

        Served from the agent cache while the TTL is fresh; once it lapses
        the cached copy is *revalidated by version pair* rather than thrown
        away — the server replies "unchanged" without payload bytes when
        the file is still at the cached version (version-exact
        invalidation, §3.5's version inquiry put to work).
        """
        fh = await self._resolve(path_or_fh)
        key = fh.encode()
        cached = self._data_cache.get(key) if self.config.cache else None
        if cached and cached[1] > self.kernel.now:
            self.metrics.incr("agent.data_cache_hits")
            return cached[0]
        if self.config.cache:
            self.metrics.incr("agent.data_cache_misses")
        args: dict[str, Any] = {"fh": key}
        if cached and cached[2] is not None and self.config.version_validate:
            args["verify"] = list(cached[2])
        to = await self._route_target(fh)
        reply = await self._nfs("read", args, to=to,
                                on_target_fail=lambda t:
                                self._forget_route(fh.sid))
        self._learn_placement(fh, reply)
        version = tuple(reply["version"]) if "version" in reply else None
        if reply.get("unchanged") and cached:
            self.metrics.incr("agent.data_cache_revalidations")
            data = cached[0]
        else:
            data = reply["data"]
        if self.config.cache:
            self._data_cache[key] = (data, self.kernel.now +
                                     self.config.data_ttl_ms, version)
        return data

    async def _route_target(self, fh: FileHandle) -> str | None:
        """Where to aim a read: a hinted replica holder, the §5.3 shortcut
        target, or ``None`` for the plain mount-server path."""
        if self.config.route_hints and not fh.foreign:
            holders = self._placement_cache.get(fh.sid)
            if holders:
                if self.server in holders:
                    return None  # the mount server already holds a replica
                self.metrics.incr("agent.routed_reads")
                return holders[0]
        return await self._shortcut_target(fh)

    def _learn_placement(self, fh: FileHandle, reply: dict) -> None:
        """Absorb the placement hint piggybacked on a read reply."""
        if not self.config.route_hints or fh.foreign:
            return
        hint = reply.get("placement")
        if not hint:
            return
        holders = sorted(hint.get("holders") or [])
        if not holders:
            return
        served = hint.get("served_by")
        if served in holders:  # the server that answered goes first
            holders.remove(served)
            holders.insert(0, served)
        self._placement_cache[fh.sid] = holders
        self.metrics.incr("agent.placement_hints")

    def _forget_route(self, sid: str) -> None:
        """A routed target failed: drop what we believed about it."""
        self._placement_cache.pop(sid, None)
        self._location_cache.pop(sid, None)

    async def _shortcut_target(self, fh: FileHandle) -> str | None:
        """Access shortcut: read directly from a replica holder (§5.3)."""
        if not self.config.shortcut or fh.foreign:
            return None
        key = fh.sid
        if key not in self._location_cache:
            try:
                reply = await self._cmd("locate", {"fh": fh.encode()})
            except NfsError:
                return None
            holders = reply["located"]["holders"]
            if not holders:
                return None
            self._location_cache[key] = holders[0]
            self.metrics.incr("agent.shortcuts_learned")
        return self._location_cache[key]

    async def write_file(self, path_or_fh: str | FileHandle,
                         data: bytes) -> FileAttrs:
        """Whole-file write: truncate-and-write in one NFS write at 0."""
        fh = await self._resolve(path_or_fh)
        await self._nfs("setattr", {"fh": fh.encode(), "sattr": {"size": 0}})
        reply = await self._nfs("write", {"fh": fh.encode(), "offset": 0,
                                          "data": data},
                                size_bytes=max(256, len(data)))
        self._invalidate(fh)
        attrs = FileAttrs.from_wire(reply["attrs"])
        if self.config.cache:
            self._remember_attrs(fh, attrs)
        return attrs

    async def write_at(self, path_or_fh: str | FileHandle, offset: int,
                       data: bytes) -> FileAttrs:
        """Positioned write."""
        fh = await self._resolve(path_or_fh)
        reply = await self._nfs("write", {"fh": fh.encode(), "offset": offset,
                                          "data": data},
                                size_bytes=max(256, len(data)))
        self._invalidate(fh)
        return FileAttrs.from_wire(reply["attrs"])

    async def create(self, dirpath: str, name: str,
                     sattr: dict | None = None) -> FileHandle:
        """Create a file in the directory at ``dirpath``."""
        dirfh = await self._resolve(dirpath)
        reply = await self._nfs("create", {"fh": dirfh.encode(), "name": name,
                                           "sattr": sattr or {}})
        fh = FileHandle.decode(reply["fh"])
        if self.config.cache:
            self._handle_cache[dirpath.rstrip("/") + "/" + name] = fh
        return fh

    async def mkdir(self, dirpath: str, name: str) -> FileHandle:
        """Create a directory."""
        dirfh = await self._resolve(dirpath)
        reply = await self._nfs("mkdir", {"fh": dirfh.encode(), "name": name})
        fh = FileHandle.decode(reply["fh"])
        if self.config.cache:
            self._handle_cache[dirpath.rstrip("/") + "/" + name] = fh
        return fh

    async def symlink(self, dirpath: str, name: str, target: str) -> FileHandle:
        """Create a soft link."""
        dirfh = await self._resolve(dirpath)
        reply = await self._nfs("symlink", {"fh": dirfh.encode(), "name": name,
                                            "target": target})
        return FileHandle.decode(reply["fh"])

    async def readlink(self, path_or_fh: str | FileHandle) -> str:
        """Read a soft link's target."""
        fh = await self._resolve(path_or_fh)
        return (await self._nfs("readlink", {"fh": fh.encode()}))["target"]

    async def remove(self, dirpath: str, name: str) -> None:
        """Unlink a file."""
        dirfh = await self._resolve(dirpath)
        await self._nfs("remove", {"fh": dirfh.encode(), "name": name})
        self._handle_cache.pop(dirpath.rstrip("/") + "/" + name, None)

    async def rmdir(self, dirpath: str, name: str) -> None:
        """Remove an empty directory."""
        dirfh = await self._resolve(dirpath)
        await self._nfs("rmdir", {"fh": dirfh.encode(), "name": name})
        self._handle_cache.pop(dirpath.rstrip("/") + "/" + name, None)

    async def rename(self, fromdir: str, fromname: str,
                     todir: str, toname: str) -> None:
        """Move/rename a file."""
        fromfh = await self._resolve(fromdir)
        tofh = await self._resolve(todir)
        await self._nfs("rename", {"fh": fromfh.encode(), "fromname": fromname,
                                   "tofh": tofh.encode(), "toname": toname})
        self._handle_cache.pop(fromdir.rstrip("/") + "/" + fromname, None)

    async def link(self, filepath: str, todir: str, name: str) -> None:
        """Create a hard link."""
        fh = await self._resolve(filepath)
        tofh = await self._resolve(todir)
        await self._nfs("link", {"fh": fh.encode(), "tofh": tofh.encode(),
                                 "name": name})

    async def readdir(self, path_or_fh: str | FileHandle) -> list[dict]:
        """List a directory."""
        fh = await self._resolve(path_or_fh)
        return (await self._nfs("readdir", {"fh": fh.encode()}))["entries"]

    # ------------------------------------------------------------------ #
    # Deceit special commands
    # ------------------------------------------------------------------ #

    async def set_params(self, path_or_fh: str | FileHandle, **changes) -> dict:
        """Tune the file's semantic parameters (§4)."""
        fh = await self._resolve(path_or_fh)
        reply = await self._cmd("setparam", {"fh": fh.encode(),
                                             "changes": changes})
        return reply["params"]

    async def list_versions(self, path_or_fh: str | FileHandle) -> dict[int, tuple]:
        """All live versions of a file (``foo;3`` names, §3.5)."""
        fh = await self._resolve(path_or_fh)
        reply = await self._cmd("list_versions", {"fh": fh.encode()})
        return {int(m): tuple(v) for m, v in reply["versions"].items()}

    async def locate(self, path_or_fh: str | FileHandle) -> dict:
        """Replica and token locations."""
        fh = await self._resolve(path_or_fh)
        return (await self._cmd("locate", {"fh": fh.encode()}))["located"]

    async def create_replica(self, path_or_fh: str | FileHandle,
                             server: str) -> bool:
        """Explicitly place a replica (generation method 3)."""
        fh = await self._resolve(path_or_fh)
        reply = await self._cmd("create_replica", {"fh": fh.encode(),
                                                   "server": server})
        return reply["created"]

    async def delete_replica(self, path_or_fh: str | FileHandle,
                             server: str) -> bool:
        """Explicitly remove a replica."""
        fh = await self._resolve(path_or_fh)
        reply = await self._cmd("delete_replica", {"fh": fh.encode(),
                                                   "server": server})
        return reply["deleted"]

    async def conflicts(self) -> list[dict]:
        """The well-known conflict log (§3.6)."""
        return (await self._cmd("conflicts", {}))["conflicts"]

    async def reconcile(self, path_or_fh: str | FileHandle, keep: int) -> list[int]:
        """Resolve divergent versions by keeping one major."""
        fh = await self._resolve(path_or_fh)
        return (await self._cmd("reconcile", {"fh": fh.encode(),
                                              "keep": keep}))["dropped"]
