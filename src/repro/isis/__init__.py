"""ISIS substrate: virtually synchronous process groups.

Deceit delegates all communication and process-group management to the ISIS
Distributed Programming Environment (§2.4, §5.4).  This package rebuilds the
ISIS facilities Deceit depends on:

- **process groups** with atomic membership change (view synchrony): a
  coordinator runs a flush protocol so every message multicast in a view is
  delivered in that view at every surviving member before the next view is
  installed;
- **broadcast primitives**: FIFO/causal multicast (``cbcast``, vector-clock
  delivery order, after Birman-Schiper-Stephenson) and totally ordered
  multicast (``abcast``, coordinator-as-sequencer), both with ISIS-style
  "collect the first *k* replies" semantics;
- **failure detection coordinated with communication** (§3.4 footnote: "ISIS
  provides a clean notion of availability"): heartbeat-driven suspicion that
  feeds view changes, with shunning of stale epochs;
- **state transfer** to joining members via application callbacks;
- **group location** by name within a cell (the paper's "global search ...
  limited to within a Deceit cell", §3.2).

Partition behaviour follows the paper's forward-looking note (§2.4 footnote
4): this is the partition-*tolerant* variant — each side of a partition
installs its own view and keeps running; merge policy is left to the
application (Deceit's version machinery), which is exactly how §3.5/§3.6
describe recovery.
"""

from repro.isis.process import GroupApp, IsisProcess
from repro.isis.view import View
from repro.isis.vector_clock import VectorClock

__all__ = ["GroupApp", "IsisProcess", "VectorClock", "View"]
