"""The ISIS process: group membership, ordered multicast, state transfer.

One :class:`IsisProcess` runs per server machine.  The application above it
(Deceit's segment server) supplies a :class:`GroupApp` with four callbacks:
message delivery, view-change notification, and state get/set for transfer
to joining members.

Protocol summary
----------------

*Multicast (cbcast)* — Birman-Schiper-Stephenson causal broadcast: each
message carries the sender's per-group vector clock; receivers delay
delivery until the clock condition holds.  Reply collection is ISIS-style:
the sender asks for the first *k* replies (or all) within a timeout and gets
whatever arrived — counting correct replies is exactly how Deceit's token
holder detects replica loss (§3.1).

*Totally ordered multicast (abcast)* — forwarded to the view coordinator,
which emits it as its own FIFO multicast; since one process sequences every
abcast of the view, all members deliver in one order.

*View change* — the coordinator flushes the old view (members pause sends
and surrender their message logs), merges the logs so every message seen by
any survivor is delivered at all survivors (virtual synchrony), then
installs the new view, shipping application state to joiners.

*Failure / partition* — heartbeat suspicions trigger view changes by the
lowest-ranked surviving member.  Each side of a partition installs its own
view and continues (partition-tolerant variant; see package docstring).
Stale processes are shunned by view-id/epoch checks and must rejoin.
"""

from __future__ import annotations

import itertools
from typing import Any, Protocol

from repro.errors import GroupNotFound, NotMember, RpcTimeout
from repro.isis.failure_detector import FailureDetector
from repro.isis.vector_clock import VectorClock
from repro.isis.view import View
from repro.net import Network, Node, RpcRemoteError
from repro.net.message import Message
from repro.sim import SimFuture, SimTimeoutError
from repro.sim.sync import Lock

JOIN_TIMEOUT_MS = 1000.0
FLUSH_TIMEOUT_MS = 400.0
LOCATE_TIMEOUT_MS = 150.0
REPLY_TIMEOUT_MS = 400.0


class GroupApp(Protocol):
    """Callbacks the application layers provide to the group layer."""

    async def deliver(self, group: str, sender: str, payload: Any) -> Any:
        """Handle one group multicast; the return value is the reply."""
        ...

    def view_change(self, group: str, view: View, joined: list[str], left: list[str]) -> None:
        """Notification that a new view was installed."""
        ...

    def get_group_state(self, group: str) -> Any:
        """Snapshot application state for transfer to a joiner."""
        ...

    def set_group_state(self, group: str, state: Any) -> None:
        """Install transferred state on a joiner."""
        ...


class _GroupState:
    """Per-group bookkeeping at one member."""

    __slots__ = (
        "view", "vc", "pending", "log", "flushing", "flush_waiters",
        "ahead", "change_lock",
    )

    def __init__(self, view: View, kernel):
        self.view = view
        self.vc = VectorClock()
        self.pending: list[dict] = []      # received, not yet deliverable
        self.log: dict[tuple[str, int], dict] = {}  # seen this view (flush)
        self.flushing = False
        self.flush_waiters: list[SimFuture] = []
        self.ahead: list[dict] = []        # messages stamped with a future view
        self.change_lock = Lock(kernel)    # serializes view changes (coordinator)


class IsisProcess(Node):
    """A Node speaking the group protocols, hosting one :class:`GroupApp`."""

    def __init__(
        self,
        network: Network,
        addr: str,
        cell_peers: list[str] | None = None,
        fd_interval_ms: float = 50.0,
        fd_timeout_ms: float = 200.0,
    ):
        super().__init__(network, addr)
        self.app: GroupApp | None = None
        self.groups: dict[str, _GroupState] = {}
        self._collectors: dict[int, dict] = {}
        self._collector_ids = itertools.count(1)
        self._join_waits: dict[str, SimFuture] = {}
        self.cell_peers = list(cell_peers or [])
        self.fd = FailureDetector(self, self.cell_peers, fd_interval_ms, fd_timeout_ms)
        self.fd.subscribe(on_suspect=self._on_peer_suspected)
        self._register_isis_handlers()

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def set_app(self, app: GroupApp) -> None:
        """Attach the application (must precede group activity)."""
        self.app = app

    def start(self) -> None:
        """Start failure detection (call once the roster is final)."""
        self.fd.start()

    def set_cell_peers(self, peers: list[str]) -> None:
        """Define the cell roster used for heartbeats and group location."""
        self.cell_peers = [p for p in peers if p != self.addr]
        for p in self.cell_peers:
            self.fd.add_peer(p)

    def reachable(self, a: str, b: str) -> bool:
        """Whether the network currently delivers between two addresses
        (convenience for the pipeline services' transport port)."""
        return self.network.reachable(a, b)

    def _register_isis_handlers(self) -> None:
        self.register_handler("isis_locate", self._h_locate)
        self.register_handler("isis_join_req", self._h_join_req)
        self.register_handler("isis_leave_req", self._h_leave_req)
        self.register_handler("isis_flush", self._h_flush)
        self.register_handler("isis_install", self._h_install)
        self.register_handler("isis_abc_fwd", self._h_abc_fwd)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def on_crash(self) -> None:
        """Volatile group state dies with the process (§3.5: only replica
        data, token state, and the handle map are non-volatile)."""
        self.groups.clear()
        self._collectors.clear()
        for _group, fut in sorted(self._join_waits.items()):
            fut.try_set_exception(GroupNotFound("crashed while joining"))
        self._join_waits.clear()
        self.fd.stop()

    def on_recover(self) -> None:
        self.fd.start()

    # ------------------------------------------------------------------ #
    # membership API
    # ------------------------------------------------------------------ #

    def create_group(self, group: str) -> View:
        """Found a new group with this process as sole member."""
        if group in self.groups:
            raise ValueError(f"{self.addr} already in group {group}")
        view = View(group, 1, (self.addr,))
        self.groups[group] = _GroupState(view, self.kernel)
        self.network.metrics.incr("isis.groups_created")
        if self.app:
            self.app.view_change(group, view, [self.addr], [])
        return view

    async def join_group(self, group: str, contact: str | None = None,
                         timeout: float = JOIN_TIMEOUT_MS) -> View:
        """Join ``group``; locates a member if no ``contact`` is given.

        Blocks until the new view (including us) is installed here, state
        transfer included.  Raises :class:`GroupNotFound` if no member can
        be located within the cell.
        """
        if group in self.groups:
            return self.groups[group].view
        self.network.metrics.incr("isis.joins")
        if contact is None:
            contact = await self.locate_group(group)
        wait = self.kernel.create_future()
        self._join_waits[group] = wait
        try:
            await self.call(contact, "isis_join_req", timeout=timeout,
                            group=group, joiner=self.addr, tag="isis_join")
            await self.kernel.wait_for(wait, timeout)
        except (RpcTimeout, SimTimeoutError) as exc:
            raise GroupNotFound(f"join {group} via {contact} failed: {exc}") from exc
        finally:
            self._join_waits.pop(group, None)
        return self.groups[group].view

    async def leave_group(self, group: str) -> None:
        """Leave gracefully (coordinator runs the view change)."""
        state = self.groups.get(group)
        if state is None:
            return
        coord = state.view.coordinator
        if coord == self.addr:
            await self._run_view_change(group, leaving={self.addr}, joining=())
            self.groups.pop(group, None)
        else:
            try:
                await self.call(coord, "isis_leave_req", group=group,
                                leaver=self.addr, tag="isis_leave")
            except (RpcTimeout, RpcRemoteError):
                pass  # coordinator will discover via FD; we just forget
            self.groups.pop(group, None)

    def members(self, group: str) -> tuple[str, ...]:
        """Current view membership (empty tuple if not a member)."""
        state = self.groups.get(group)
        return state.view.members if state else ()

    def current_view(self, group: str) -> View | None:
        """Installed view, or ``None`` when not a member."""
        state = self.groups.get(group)
        return state.view if state else None

    def is_member(self, group: str) -> bool:
        """Whether this process currently belongs to ``group``."""
        return group in self.groups

    def group_names(self) -> list[str]:
        """Names of all groups this process belongs to."""
        return sorted(self.groups)

    async def locate_group(self, group: str) -> str:
        """Find any member of ``group`` by querying the cell roster.

        This is the "global search" of §3.2 — expensive (one round to every
        cell peer) and deliberately confined to the cell.
        """
        self.network.metrics.incr("isis.locates")
        if group in self.groups:
            return self.addr
        futures = [
            self.rpc(peer, "isis_locate", {"group": group},
                     timeout=LOCATE_TIMEOUT_MS, tag="isis_locate")
            for peer in self.cell_peers
        ]
        found: str | None = None
        for fut in futures:
            try:
                answer = await fut
            except (RpcTimeout, RpcRemoteError):
                continue
            if answer and found is None:
                found = answer["member"]
        if found is None:
            raise GroupNotFound(f"no member of {group} in cell")
        return found

    # ------------------------------------------------------------------ #
    # multicast API
    # ------------------------------------------------------------------ #

    async def cbcast(
        self,
        group: str,
        payload: Any,
        nreplies: int | str = 0,
        timeout: float = REPLY_TIMEOUT_MS,
        size_bytes: int = 512,
        tag: str = "cbcast",
        on_audit=None,
        audit_timeout: float | None = None,
        count_reply=None,
    ) -> list[tuple[str, Any]]:
        """Causally ordered multicast; collect the first ``nreplies`` replies.

        ``nreplies=0`` returns immediately after sending; ``nreplies="all"``
        waits for every current member (or the timeout).  Returns
        ``[(member, reply_value), ...]`` in arrival order — the caller
        counts them (Deceit's replica-loss detection does exactly this).

        ``count_reply`` (a predicate over the reply value) narrows *which*
        replies satisfy ``nreplies``: every reply is still collected and
        returned, but the early wait completes only once ``nreplies``
        replies pass the predicate.  This is the write-safety commit point
        — a safety-*s* ack must wait for *s* durable copies, and a cache
        member's "got it, didn't persist it" reply must not count.

        ``on_audit`` keeps the reply collector alive after the early return
        and calls ``on_audit(all_replies)`` once ``audit_timeout`` (default:
        ``timeout``) has elapsed — this is how Deceit's token holder returns
        to the client after the first *s* replies yet still counts the full
        reply set to detect lost replicas (§3.1 method 1).
        """
        state = self.groups.get(group)
        if state is None:
            raise NotMember(f"{self.addr} not in {group}")
        await self._wait_not_flushing(state)
        view = state.view
        want = len(view.members) if nreplies == "all" else int(nreplies)
        req_id = None
        collector_fut: SimFuture | None = None
        if want > 0 or on_audit is not None:
            req_id = next(self._collector_ids)
            collector_fut = self.kernel.create_future()
            if want == 0:
                collector_fut.set_result(None)  # early return is immediate
            self._collectors[req_id] = {
                "fut": collector_fut, "replies": [],
                "want": want or len(view.members),
                "count": count_reply, "counted": 0,
            }
        vc = state.vc.copy()
        vc.increment(self.addr)
        msg = {
            "type": "mcast",
            "group": group,
            "view_id": view.view_id,
            "sender": self.addr,
            "seq": vc.get(self.addr),
            "vc": vc.as_dict(),
            "payload": payload,
            "reply_req": req_id,
            "origin": self.addr,
        }
        self.network.metrics.incr("isis.mcasts")
        for member in view.members:
            if member != self.addr:
                self.send(member, msg, size_bytes=size_bytes, tag=tag)
        # Local copy delivers immediately (we are causally up to date).
        self._deliver_mcast(state, msg)
        if collector_fut is None:
            return []
        if not collector_fut.done():
            try:
                await self.kernel.wait_for(collector_fut, timeout)
            except SimTimeoutError:
                pass  # return whatever arrived; caller counts correct replies
        if on_audit is None:
            record = self._collectors.pop(req_id, None)
            return list(record["replies"]) if record else []
        # keep collecting in the background, then hand the full set to the audit
        early = list(self._collectors[req_id]["replies"])

        def _finish_audit() -> None:
            record = self._collectors.pop(req_id, None)
            if record is not None:
                on_audit(list(record["replies"]))

        self.kernel.schedule(audit_timeout or timeout, _finish_audit)
        return early

    async def abcast(
        self,
        group: str,
        payload: Any,
        nreplies: int | str = 0,
        timeout: float = REPLY_TIMEOUT_MS,
        size_bytes: int = 512,
        tag: str = "abcast",
    ) -> list[tuple[str, Any]]:
        """Totally ordered multicast via the coordinator-sequencer."""
        state = self.groups.get(group)
        if state is None:
            raise NotMember(f"{self.addr} not in {group}")
        coord = state.view.coordinator
        if coord == self.addr:
            return await self.cbcast(group, payload, nreplies=nreplies,
                                     timeout=timeout, size_bytes=size_bytes, tag=tag)
        # Forward to sequencer; replies still flow directly to us.
        want = len(state.view.members) if nreplies == "all" else int(nreplies)
        req_id = None
        collector_fut = None
        if want > 0:
            req_id = next(self._collector_ids)
            collector_fut = self.kernel.create_future()
            self._collectors[req_id] = {"fut": collector_fut, "replies": [], "want": want}
        self.network.metrics.incr("isis.abcast_forwards")
        await self.call(coord, "isis_abc_fwd", group=group, payload=payload,
                        reply_req=req_id, origin=self.addr,
                        size_bytes=size_bytes, tag=tag, timeout=timeout)
        if collector_fut is None:
            return []
        try:
            await self.kernel.wait_for(collector_fut, timeout)
        except SimTimeoutError:
            pass
        record = self._collectors.pop(req_id, None)
        return list(record["replies"]) if record else []

    def _wait_not_flushing(self, state: _GroupState) -> SimFuture:
        fut = self.kernel.create_future()
        if not state.flushing:
            fut.set_result(None)
        else:
            state.flush_waiters.append(fut)
        return fut

    # ------------------------------------------------------------------ #
    # multicast receive path
    # ------------------------------------------------------------------ #

    def on_message(self, msg: Message) -> None:
        self.fd.observe(msg)
        payload = msg.payload
        if not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "mcast":
            self._on_mcast(payload)
        elif kind == "mreply":
            self._on_mreply(payload)
        # heartbeats already consumed by fd.observe

    def _on_mcast(self, msg: dict) -> None:
        group = msg["group"]
        state = self.groups.get(group)
        if state is None:
            return  # not a member (stale sender view) — shun
        if msg["view_id"] < state.view.view_id:
            self.network.metrics.incr("isis.stale_mcasts")
            return
        if msg["view_id"] > state.view.view_id:
            state.ahead.append(msg)  # install in flight; hold
            return
        key = (msg["sender"], msg["seq"])
        if key in state.log:
            return  # duplicate (flush re-delivery overlap)
        state.log[key] = msg
        self._try_deliveries(state, msg)

    def _try_deliveries(self, state: _GroupState, new_msg: dict | None) -> None:
        if new_msg is not None:
            state.pending.append(new_msg)
        progress = True
        while progress:
            progress = False
            for queued in list(state.pending):
                msg_vc = VectorClock(queued["vc"])
                if state.vc.deliverable_from(queued["sender"], msg_vc):
                    state.pending.remove(queued)
                    self._deliver_mcast(state, queued)
                    progress = True

    def _deliver_mcast(self, state: _GroupState, msg: dict) -> None:
        state.vc.clock[msg["sender"]] = msg["seq"]
        state.log[(msg["sender"], msg["seq"])] = msg
        self.network.metrics.incr("isis.deliveries")
        if self.app is None:
            return
        self.spawn(self._apply_and_reply(msg), name=f"{self.addr}:deliver")

    async def _apply_and_reply(self, msg: dict) -> None:
        payload = msg["payload"]
        sender = msg["sender"]
        # abcast wrapping: the sequencer forwards on behalf of the origin
        if isinstance(payload, dict) and payload.get("_abc_origin"):
            sender = payload["_abc_origin"]
            payload = payload["_abc_payload"]
        try:
            value = await self.app.deliver(msg["group"], sender, payload)
        except Exception as exc:
            value = {"_error": f"{type(exc).__name__}: {exc}"}
        req_id = msg.get("reply_req")
        if req_id is not None:
            reply = {"type": "mreply", "req_id": req_id,
                     "member": self.addr, "value": value}
            origin = msg.get("origin", msg["sender"])
            if origin == self.addr:
                self._on_mreply(reply)
            else:
                self.send(origin, reply, size_bytes=128, tag="mreply")

    def _on_mreply(self, payload: dict) -> None:
        record = self._collectors.get(payload["req_id"])
        if record is None:
            return  # late reply after collection closed
        record["replies"].append((payload["member"], payload["value"]))
        predicate = record.get("count")
        if predicate is None:
            record["counted"] = len(record["replies"])
        elif predicate(payload["value"]):
            record["counted"] = record.get("counted", 0) + 1
        if record["counted"] >= record["want"]:
            record["fut"].try_set_result(None)

    # ------------------------------------------------------------------ #
    # RPC handlers (membership machinery)
    # ------------------------------------------------------------------ #

    async def _h_locate(self, src: str, group: str) -> dict | None:
        if group in self.groups:
            view = self.groups[group].view
            return {"member": self.addr,
                    "coordinator": view.coordinator,
                    "view_id": view.view_id,
                    "members": list(view.members)}
        return None

    async def _h_join_req(self, src: str, group: str, joiner: str) -> dict:
        state = self.groups.get(group)
        if state is None:
            raise GroupNotFound(f"{self.addr} not in {group}")
        coord = state.view.coordinator
        if coord != self.addr:
            # forward to the coordinator on the joiner's behalf
            return await self.call(coord, "isis_join_req", group=group,
                                   joiner=joiner, tag="isis_join")
        await self._run_view_change(group, leaving=set(), joining=(joiner,))
        return {"view_id": self.groups[group].view.view_id}

    async def _h_leave_req(self, src: str, group: str, leaver: str) -> dict:
        state = self.groups.get(group)
        if state is None:
            raise GroupNotFound(f"{self.addr} not in {group}")
        if state.view.coordinator != self.addr:
            return await self.call(state.view.coordinator, "isis_leave_req",
                                   group=group, leaver=leaver, tag="isis_leave")
        await self._run_view_change(group, leaving={leaver}, joining=())
        return {"ok": True}

    async def _h_flush(self, src: str, group: str, view_id: int) -> dict:
        state = self.groups.get(group)
        if state is None or state.view.view_id != view_id:
            raise NotMember(f"flush for unknown/stale view {group}#{view_id}")
        state.flushing = True
        return {"log": list(state.log.values()), "vc": state.vc.as_dict()}

    async def _h_install(self, src: str, group: str, view_id: int,
                         members: list[str], log: list[dict],
                         state_snapshot: Any = None,
                         joined: list[str] | None = None,
                         left: list[str] | None = None) -> dict:
        self._install_view(group, view_id, members, log, state_snapshot,
                           joined or [], left or [])
        return {"ok": True}

    async def _h_abc_fwd(self, src: str, group: str, payload: Any,
                         reply_req: int | None, origin: str) -> dict:
        state = self.groups.get(group)
        if state is None:
            raise NotMember(f"{self.addr} not in {group}")
        if state.view.coordinator != self.addr:
            # coordinator moved; forward along
            return await self.call(state.view.coordinator, "isis_abc_fwd",
                                   group=group, payload=payload,
                                   reply_req=reply_req, origin=origin)
        wrapped = {"_abc_origin": origin, "_abc_payload": payload}
        await self._wait_not_flushing(state)
        view = state.view
        vc = state.vc.copy()
        vc.increment(self.addr)
        msg = {
            "type": "mcast", "group": group, "view_id": view.view_id,
            "sender": self.addr, "seq": vc.get(self.addr),
            "vc": vc.as_dict(), "payload": wrapped,
            "reply_req": reply_req, "origin": origin,
        }
        self.network.metrics.incr("isis.mcasts")
        for member in view.members:
            if member != self.addr:
                self.send(member, msg, size_bytes=512, tag="abcast")
        self._deliver_mcast(state, msg)
        return {"sequenced": True}

    # ------------------------------------------------------------------ #
    # view change engine (runs at the coordinator)
    # ------------------------------------------------------------------ #

    async def _run_view_change(self, group: str, leaving: set[str],
                               joining: tuple[str, ...]) -> None:
        state = self.groups.get(group)
        if state is None:
            return
        await state.change_lock.acquire()
        try:
            state = self.groups.get(group)
            if state is None:
                return
            leaving = set(leaving) & set(state.view.members)
            joining = tuple(j for j in joining if j not in state.view.members)
            if not leaving and not joining:
                return
            self.network.metrics.incr("isis.view_changes")
            old_view = state.view
            # 1. flush survivors (they pause sends and surrender logs).
            # RPCs are retried: one lost datagram must not evict a healthy
            # member (ISIS retransmits under its reliable transport).
            state.flushing = True
            survivors = [m for m in old_view.members
                         if m not in leaving and m != self.addr]
            merged: dict[tuple[str, int], dict] = dict(state.log)
            failed_during_flush: set[str] = set()
            for member in survivors:
                ack = None
                for _attempt in range(3):
                    try:
                        ack = await self.call(
                            member, "isis_flush", group=group,
                            view_id=old_view.view_id,
                            timeout=FLUSH_TIMEOUT_MS, tag="isis_flush")
                        break
                    except (RpcTimeout, RpcRemoteError):
                        continue
                if ack is None:
                    failed_during_flush.add(member)
                    continue
                for entry in ack["log"]:
                    merged.setdefault((entry["sender"], entry["seq"]), entry)
            leaving |= failed_during_flush
            new_view = old_view.successor(leaving, joining)
            # 2. app state for joiners
            snapshot = None
            if joining and self.app is not None:
                snapshot = self.app.get_group_state(group)
            # 3. install everywhere (joiners too)
            merged_list = list(merged.values())
            joined_list = list(joining)
            left_list = sorted(leaving)

            async def _install_at(member: str) -> None:
                is_joiner = member in joining
                args = {"group": group, "view_id": new_view.view_id,
                        "members": list(new_view.members),
                        "log": [] if is_joiner else merged_list,
                        "state_snapshot": snapshot if is_joiner else None,
                        "joined": joined_list, "left": left_list}
                for _attempt in range(3):
                    try:
                        await self.rpc(member, "isis_install", args,
                                       timeout=FLUSH_TIMEOUT_MS,
                                       size_bytes=1024, tag="isis_install")
                        return
                    except (RpcTimeout, RpcRemoteError):
                        continue  # retried; a dead member is the FD's problem

            install_tasks = [
                self.spawn(_install_at(m), name=f"{self.addr}:install:{m}")
                for m in new_view.members if m != self.addr
            ]
            for task in install_tasks:
                await task
            # 4. install locally
            self._install_view(group, new_view.view_id, list(new_view.members),
                               merged_list, None, joined_list, left_list)
        finally:
            state.change_lock.release()

    def _install_view(self, group: str, view_id: int, members: list[str],
                      log: list[dict], state_snapshot: Any,
                      joined: list[str], left: list[str]) -> None:
        state = self.groups.get(group)
        is_joiner = state is None
        if state is not None and view_id <= state.view.view_id:
            return  # stale install
        view = View(group, view_id, tuple(members))
        if is_joiner:
            state = _GroupState(view, self.kernel)
            self.groups[group] = state
            if state_snapshot is not None and self.app is not None:
                self.app.set_group_state(group, state_snapshot)
        else:
            # virtual synchrony: deliver everything from the merged log that
            # we have not yet delivered, in causal order where possible
            self._drain_log(state, log)
            state.view = view
        state.vc = VectorClock()
        state.pending.clear()
        state.log.clear()
        state.flushing = False
        waiters, state.flush_waiters = state.flush_waiters, []
        for fut in waiters:
            fut.try_set_result(None)
        ahead, state.ahead = state.ahead, []
        state.view = view
        if self.app is not None:
            self.app.view_change(group, view, joined, left)
        # wake a local joiner blocked in join_group()
        wait = self._join_waits.get(group)
        if wait is not None:
            wait.try_set_result(None)
        # process messages that arrived stamped with this (then-future) view
        for msg in ahead:
            self._on_mcast(msg)

    def _drain_log(self, state: _GroupState, merged_log: list[dict]) -> None:
        for entry in merged_log:
            key = (entry["sender"], entry["seq"])
            if key not in state.log:
                state.log[key] = entry
                state.pending.append(entry)
        self._try_deliveries(state, None)
        # Anything still pending has causal predecessors no survivor saw;
        # force-deliver deterministically so all members agree.
        leftovers = sorted(state.pending, key=lambda m: (m["sender"], m["seq"]))
        state.pending.clear()
        for msg in leftovers:
            already = state.vc.get(msg["sender"]) >= msg["seq"]
            if not already:
                self._deliver_mcast(state, msg)

    # ------------------------------------------------------------------ #
    # failure handling
    # ------------------------------------------------------------------ #

    def _on_peer_suspected(self, peer: str) -> None:
        for group, state in sorted(self.groups.items()):
            view = state.view
            if peer not in view.members:
                continue
            survivors = [m for m in view.members if not self.fd.is_suspected(m)]
            if survivors and survivors[0] == self.addr:
                suspects = {m for m in view.members if self.fd.is_suspected(m)}
                self.spawn(
                    self._run_view_change(group, leaving=suspects, joining=()),
                    name=f"{self.addr}:vchange:{group}",
                )
