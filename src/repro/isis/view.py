"""Group views: the membership snapshots between which virtual synchrony holds."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class View:
    """One installed membership of a process group.

    ``view_id`` increases monotonically along each branch of the view
    history; during a partition each side extends its own branch (the pair
    ``(view_id, coordinator)`` disambiguates, mirroring how Deceit's version
    pairs disambiguate file histories).

    Member order is significant: the *first* member is the coordinator
    (rank-0 convention from ISIS), and coordinator succession on failure is
    "next surviving member in order".
    """

    group: str
    view_id: int
    members: tuple[str, ...] = field(default_factory=tuple)

    @property
    def coordinator(self) -> str:
        """Rank-0 member; runs view changes and sequences abcasts."""
        if not self.members:
            raise ValueError(f"empty view for group {self.group}")
        return self.members[0]

    def contains(self, addr: str) -> bool:
        """Membership test."""
        return addr in self.members

    def successor(
        self,
        leaving: set[str] | None = None,
        joining: tuple[str, ...] = (),
    ) -> "View":
        """Next view: drop ``leaving``, append ``joining`` (rank order kept)."""
        leaving = leaving or set()
        kept = tuple(m for m in self.members if m not in leaving)
        added = tuple(j for j in joining if j not in kept)
        return View(self.group, self.view_id + 1, kept + added)

    def __repr__(self) -> str:
        return f"View({self.group}#{self.view_id} {list(self.members)})"
