"""Vector clocks for causal multicast delivery order."""

from __future__ import annotations


class VectorClock:
    """Map from process address to per-sender sequence count.

    Used per group: entry ``vc[p]`` is the number of multicasts from sender
    ``p`` delivered (or, on a message, sent) in the current view.  Absent
    entries read as zero, so clocks over different member sets compare
    cleanly.
    """

    __slots__ = ("clock",)

    def __init__(self, clock: dict[str, int] | None = None):
        self.clock = dict(clock) if clock else {}

    def get(self, addr: str) -> int:
        """Current count for ``addr`` (0 if absent)."""
        return self.clock.get(addr, 0)

    def increment(self, addr: str) -> None:
        """Advance ``addr``'s entry by one."""
        self.clock[addr] = self.clock.get(addr, 0) + 1

    def copy(self) -> "VectorClock":
        """Independent copy."""
        return VectorClock(self.clock)

    def merge(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place."""
        for addr, count in other.clock.items():
            if count > self.clock.get(addr, 0):
                self.clock[addr] = count

    def dominates(self, other: "VectorClock") -> bool:
        """True when ``self`` ≥ ``other`` pointwise."""
        return all(self.get(a) >= c for a, c in other.clock.items())

    def deliverable_from(self, sender: str, msg_vc: "VectorClock") -> bool:
        """Birman-Schiper-Stephenson delivery condition.

        A message from ``sender`` stamped ``msg_vc`` is deliverable at a
        process with clock ``self`` iff it is the next message from that
        sender (``msg_vc[sender] == self[sender] + 1``) and every message
        causally before it has been delivered (``msg_vc[t] <= self[t]`` for
        all other ``t``).
        """
        if msg_vc.get(sender) != self.get(sender) + 1:
            return False
        return all(
            count <= self.get(addr)
            for addr, count in msg_vc.clock.items()
            if addr != sender
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (for message payloads)."""
        return dict(self.clock)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        keys = set(self.clock) | set(other.clock)
        return all(self.get(k) == other.get(k) for k in keys)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}:{c}" for a, c in sorted(self.clock.items()))
        return f"VC({inner})"
