"""Heartbeat failure detector.

ISIS's failure detector is *coordinated with communication*: once the system
decides a process failed, that decision is consistent — the process is
shunned even if it was merely slow (fail-stop abstraction enforced by the
membership layer).  Here, the detector produces *suspicions*; the group
layer turns suspicions into view changes, and epoch tags on heartbeats make
a recovered process look like a fresh joiner rather than a ghost.

During a partition, heartbeats stop crossing the boundary, so each side
suspects the other — which is precisely how Deceit experiences a partition
(§3.5): as the unavailability of some replicas.
"""

from __future__ import annotations

from typing import Callable

from repro.net import Node
from repro.net.message import Message


class FailureDetector:
    """Per-process heartbeat monitor over a fixed peer roster.

    ``on_suspect(addr)`` fires (once per down-transition) when nothing has
    been heard from a peer for ``timeout_ms``; ``on_alive(addr)`` fires when
    a previously suspected peer is heard from again (recovery or partition
    heal).
    """

    def __init__(
        self,
        node: Node,
        peers: list[str],
        interval_ms: float = 50.0,
        timeout_ms: float = 200.0,
    ):
        self.node = node
        self.kernel = node.kernel
        self.peers = [p for p in peers if p != node.addr]
        self.interval_ms = interval_ms
        self.timeout_ms = timeout_ms
        self.last_heard: dict[str, float] = {}
        self.suspected: set[str] = set()
        #: virtual time the current suspicion of each peer began — the
        #: "down since" figure the health RPC reports for dead machines;
        #: cleared when the peer is heard from again
        self.suspected_since: dict[str, float] = {}
        self.peer_epochs: dict[str, int] = {}
        self._on_suspect: list[Callable[[str], None]] = []
        self._on_alive: list[Callable[[str], None]] = []
        self._running = False

    def subscribe(
        self,
        on_suspect: Callable[[str], None] | None = None,
        on_alive: Callable[[str], None] | None = None,
    ) -> None:
        """Register transition callbacks."""
        if on_suspect:
            self._on_suspect.append(on_suspect)
        if on_alive:
            self._on_alive.append(on_alive)

    def start(self) -> None:
        """Begin heartbeating and checking (idempotent)."""
        if self._running:
            return
        self._running = True
        now = self.kernel.now
        for peer in self.peers:
            self.last_heard.setdefault(peer, now)
        self._tick()

    def stop(self) -> None:
        """Stop heartbeating (e.g. on crash)."""
        self._running = False

    def add_peer(self, addr: str) -> None:
        """Grow the roster (new server added to the cell)."""
        if addr != self.node.addr and addr not in self.peers:
            self.peers.append(addr)
            self.last_heard[addr] = self.kernel.now

    def _tick(self) -> None:
        if not self._running or not self.node.alive:
            return
        # one shared payload for the whole burst (receivers only read it);
        # the multicast path sizes and counts the burst once instead of
        # walking an identical dict per peer — the all-pairs heartbeat
        # traffic is O(n²) per interval and dominates large cells
        self.node.multicast(
            self.peers,
            {"type": "heartbeat", "epoch": self.node.epoch},
            size_bytes=32,
            tag="heartbeat",
        )
        self._check()
        self.kernel.post(self.interval_ms, self._tick)

    def _check(self) -> None:
        now = self.kernel.now
        for peer in self.peers:
            silent = now - self.last_heard.get(peer, 0.0)
            if silent > self.timeout_ms and peer not in self.suspected:
                self.suspected.add(peer)
                # the peer went silent at last_heard; the suspicion *began*
                # now, when the timeout elapsed — health reports this time
                self.suspected_since[peer] = now
                self.node.network.metrics.incr("fd.suspicions")
                for fn in self._on_suspect:
                    fn(peer)

    def observe(self, msg: Message) -> None:
        """Feed any received message as evidence of the sender's liveness.

        Heartbeats carry the sender's crash epoch; an epoch bump means the
        peer crashed and recovered since we last saw it, so it must rejoin
        groups rather than resume — callers read :attr:`peer_epochs`.
        """
        src = msg.src
        last = self.last_heard
        if src not in last and src not in self.peers:
            return
        last[src] = self.kernel.now
        payload = msg.payload
        if type(payload) is dict and payload.get("type") == "heartbeat":
            self.peer_epochs[src] = payload.get("epoch", 0)
        if src in self.suspected:
            self.suspected.discard(src)
            self.suspected_since.pop(src, None)
            self.node.network.metrics.incr("fd.rejoins")
            for fn in self._on_alive:
                fn(src)

    def is_suspected(self, addr: str) -> bool:
        """Current suspicion status of ``addr``."""
        return addr in self.suspected
