"""Single-machine NFS server: static file↔server binding, no replication."""

from __future__ import annotations

import itertools
from typing import Any

from repro.errors import NfsStat, nfs_error, NfsError
from repro.net import Network, Node
from repro.nfs.attrs import FileAttrs, FileType, sattr_to_meta
from repro.storage import Disk, KvStore


class _Inode:
    """One file/directory/symlink on a baseline server."""

    __slots__ = ("ino", "ftype", "data", "meta", "entries")

    def __init__(self, ino: int, ftype: FileType, meta: dict[str, Any]):
        self.ino = ino
        self.ftype = ftype
        self.data = b""
        self.meta = meta
        self.entries: dict[str, int] = {}  # directories: name -> ino

    def attrs(self) -> FileAttrs:
        return FileAttrs.from_meta(self.meta, len(self.data))


class BaselineNfsServer(Node):
    """A plain NFS server exporting one directory tree.

    File handles are ``"<server>:<ino>"`` — *bound to this server*: if the
    machine is down, every handle it issued is dead, which is precisely the
    contrast Figure 2 draws against Deceit's interchangeable servers.
    """

    def __init__(self, network: Network, addr: str):
        super().__init__(network, addr)
        self.disk = Disk(self.kernel, name=f"{addr}.disk",
                         metrics=network.metrics)
        self._store = KvStore(self.disk, "nfs")
        self._inodes: dict[int, _Inode] = {}
        self._ino = itertools.count(2)
        self.metrics = network.metrics
        root = _Inode(1, FileType.DIRECTORY,
                      FileAttrs(ftype=FileType.DIRECTORY, mode=0o755).to_meta())
        self._inodes[1] = root
        self.register_handler("nfs", self._h_nfs)
        self.register_handler("nfs_root", self._h_root)

    # ------------------------------------------------------------------ #
    # handle plumbing
    # ------------------------------------------------------------------ #

    def _fh(self, ino: int) -> str:
        return f"{self.addr}:{ino}"

    def _node(self, fh: str) -> _Inode:
        server, _sep, ino = fh.partition(":")
        if server != self.addr:
            raise nfs_error(NfsStat.ERR_STALE, f"handle {fh} not from {self.addr}")
        node = self._inodes.get(int(ino))
        if node is None:
            raise nfs_error(NfsStat.ERR_STALE, fh)
        return node

    @property
    def root_fh(self) -> str:
        """The exported root handle."""
        return self._fh(1)

    # ------------------------------------------------------------------ #
    # RPC entry points (same vocabulary as Deceit's facade)
    # ------------------------------------------------------------------ #

    async def _h_root(self, src: str) -> dict:
        return {"status": 0, "fh": self.root_fh}

    async def _h_nfs(self, src: str, op: str, args: dict[str, Any]) -> dict:
        self.metrics.incr("baseline.requests")
        try:
            return await self._dispatch(op, args)
        except NfsError as exc:
            return {"status": exc.status, "error": str(exc)}

    async def _dispatch(self, op: str, args: dict[str, Any]) -> dict:
        now = self.kernel.now
        if op == "getattr":
            node = self._node(args["fh"])
            return {"status": 0, "attrs": node.attrs().to_wire()}
        if op == "setattr":
            node = self._node(args["fh"])
            node.meta.update(sattr_to_meta(args["sattr"]))
            if "size" in args["sattr"]:
                size = int(args["sattr"]["size"])
                node.data = node.data[:size] + b"\x00" * (size - len(node.data))
            await self._persist(node)
            return {"status": 0, "attrs": node.attrs().to_wire()}
        if op == "lookup":
            node = self._node(args["fh"])
            ino = node.entries.get(args["name"])
            if ino is None:
                raise nfs_error(NfsStat.ERR_NOENT, args["name"])
            child = self._inodes[ino]
            return {"status": 0, "fh": self._fh(ino),
                    "attrs": child.attrs().to_wire()}
        if op == "read":
            node = self._node(args["fh"])
            if node.ftype is FileType.DIRECTORY:
                raise nfs_error(NfsStat.ERR_ISDIR, args["fh"])
            offset = args.get("offset", 0)
            count = args.get("count")
            end = len(node.data) if count is None else offset + count
            await self.disk.read(f"ino/{node.ino}")  # charge the disk read
            return {"status": 0, "data": node.data[offset:end]}
        if op == "write":
            node = self._node(args["fh"])
            offset = args.get("offset", 0)
            data = args["data"]
            if offset > len(node.data):
                node.data += b"\x00" * (offset - len(node.data))
            node.data = node.data[:offset] + data + node.data[offset + len(data):]
            node.meta["mtime"] = now
            await self._persist(node)
            return {"status": 0, "attrs": node.attrs().to_wire()}
        if op == "create":
            return await self._create(args, FileType.REGULAR)
        if op == "mkdir":
            return await self._create(args, FileType.DIRECTORY)
        if op == "symlink":
            reply = await self._create(args, FileType.SYMLINK)
            node = self._node(reply["fh"])
            node.data = args["target"].encode()
            await self._persist(node)
            return reply
        if op == "readlink":
            node = self._node(args["fh"])
            return {"status": 0, "target": node.data.decode()}
        if op == "remove":
            node = self._node(args["fh"])
            ino = node.entries.pop(args["name"], None)
            if ino is None:
                raise nfs_error(NfsStat.ERR_NOENT, args["name"])
            child = self._inodes[ino]
            child.meta["nlink"] = child.meta.get("nlink", 1) - 1
            if child.meta["nlink"] <= 0:
                self._inodes.pop(ino, None)
                await self.disk.delete(f"ino/{ino}", sync=False)
            await self._persist(node)
            return {"status": 0}
        if op == "rmdir":
            node = self._node(args["fh"])
            ino = node.entries.get(args["name"])
            if ino is None:
                raise nfs_error(NfsStat.ERR_NOENT, args["name"])
            child = self._inodes[ino]
            if child.entries:
                raise nfs_error(NfsStat.ERR_NOTEMPTY, args["name"])
            del node.entries[args["name"]]
            self._inodes.pop(ino, None)
            await self._persist(node)
            return {"status": 0}
        if op == "readdir":
            node = self._node(args["fh"])
            return {"status": 0, "entries": [
                {"name": name, "fh": self._fh(ino),
                 "type": self._inodes[ino].ftype.value}
                for name, ino in sorted(node.entries.items())
            ]}
        if op == "link":
            node = self._node(args["fh"])
            todir = self._node(args["tofh"])
            if args["name"] in todir.entries:
                raise nfs_error(NfsStat.ERR_EXIST, args["name"])
            todir.entries[args["name"]] = node.ino
            node.meta["nlink"] = node.meta.get("nlink", 1) + 1
            await self._persist(todir)
            return {"status": 0}
        if op == "rename":
            fromdir = self._node(args["fh"])
            todir = self._node(args["tofh"])
            ino = fromdir.entries.pop(args["fromname"], None)
            if ino is None:
                raise nfs_error(NfsStat.ERR_NOENT, args["fromname"])
            todir.entries[args["toname"]] = ino
            await self._persist(fromdir)
            await self._persist(todir)
            return {"status": 0}
        if op == "statfs":
            return {"status": 0, "statfs": {"tsize": 8192, "bsize": 4096,
                                            "blocks": 1 << 20, "bfree": 1 << 19,
                                            "bavail": 1 << 19}}
        raise nfs_error(NfsStat.ERR_IO, f"unknown op {op!r}")

    async def _create(self, args: dict[str, Any], ftype: FileType) -> dict:
        parent = self._node(args["fh"])
        name = args["name"]
        if name in parent.entries:
            raise nfs_error(NfsStat.ERR_EXIST, name)
        now = self.kernel.now
        attrs = FileAttrs(ftype=ftype, atime=now, mtime=now, ctime=now,
                          mode=0o755 if ftype is FileType.DIRECTORY else 0o644)
        meta = attrs.to_meta()
        meta.update(sattr_to_meta(args.get("sattr") or {}))
        ino = next(self._ino)
        node = _Inode(ino, ftype, meta)
        self._inodes[ino] = node
        parent.entries[name] = ino
        # parent directory and new inode ride one write-behind batch
        await self._store.put_batch(
            [self._record(parent), self._record(node)], sync=False)
        return {"status": 0, "fh": self._fh(ino), "attrs": node.attrs().to_wire()}

    @staticmethod
    def _record(node: _Inode) -> tuple[str, dict]:
        return (f"ino/{node.ino}", {
            "ftype": node.ftype.value, "data": node.data,
            "meta": node.meta, "entries": node.entries,
        })

    async def _persist(self, node: _Inode) -> None:
        key, value = self._record(node)
        await self._store.put(key, value, sync=False)
