"""Baseline NFS client with a per-client mount table (Figure 1).

The name space is assembled *at the client* by linking server directory
trees under mount points.  There is no failover: a handle names one
server's inode, so when that server is down the subtree is simply gone —
"standard NFS client software does not provide this capability" (§2.1).
"""

from __future__ import annotations

from typing import Any

from repro.errors import NfsError, NfsStat, nfs_error
from repro.net import Network, Node
from repro.nfs.attrs import FileAttrs
from repro.nfs.names import split_path

RPC_TIMEOUT_MS = 600.0


class BaselineClient(Node):
    """A client machine with a static mount table.

    ``mounts`` maps absolute path prefixes to server addresses; the longest
    matching prefix wins, mirroring how `/usr` and `/usr/local` can live on
    different NFS servers.
    """

    def __init__(self, network: Network, addr: str, mounts: dict[str, str]):
        super().__init__(network, addr)
        if "/" not in mounts:
            raise ValueError("mount table must cover '/'")
        self.mounts = dict(mounts)
        self.metrics = network.metrics
        self._roots: dict[str, str] = {}  # server -> root fh

    def _server_for(self, path: str) -> tuple[str, str]:
        """(server, path-remainder-under-its-export) for an absolute path."""
        best = "/"
        for prefix in self.mounts:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                if len(prefix) > len(best):
                    best = prefix
        server = self.mounts[best]
        remainder = path[len(best):] if best != "/" else path
        return server, remainder

    async def _root_of(self, server: str) -> str:
        if server not in self._roots:
            reply = await self.call(server, "nfs_root",
                                    timeout=RPC_TIMEOUT_MS, tag="mount")
            if reply["status"] != 0:
                raise NfsError(reply["status"], reply.get("error", ""))
            self._roots[server] = reply["fh"]
        return self._roots[server]

    async def _nfs(self, server: str, op: str, args: dict[str, Any],
                   size_bytes: int = 256) -> dict:
        from repro.errors import RpcTimeout, Unreachable
        try:
            reply = await self.call(server, "nfs", op=op, args=args,
                                    timeout=RPC_TIMEOUT_MS,
                                    size_bytes=size_bytes, tag=f"nfs.{op}")
        except (RpcTimeout, Unreachable) as exc:
            # A plain NFS client just hangs/errors: the handle names a dead
            # server and there is nowhere else to go (§2.1).
            raise nfs_error(NfsStat.ERR_IO, f"server {server} unreachable") from exc
        if reply["status"] != 0:
            raise NfsError(reply["status"], reply.get("error", ""))
        return reply

    async def _walk(self, path: str) -> tuple[str, str]:
        """Resolve an absolute path to (server, fh)."""
        server, remainder = self._server_for(path)
        fh = await self._root_of(server)
        for part in split_path(remainder):
            reply = await self._nfs(server, "lookup", {"fh": fh, "name": part})
            fh = reply["fh"]
        return server, fh

    # ------------------------------------------------------------------ #
    # user-facing operations (same surface as the Deceit agent)
    # ------------------------------------------------------------------ #

    async def getattr(self, path: str) -> FileAttrs:
        """Attributes by path."""
        server, fh = await self._walk(path)
        reply = await self._nfs(server, "getattr", {"fh": fh})
        return FileAttrs.from_wire(reply["attrs"])

    async def read_file(self, path: str) -> bytes:
        """Whole-file read."""
        server, fh = await self._walk(path)
        return (await self._nfs(server, "read", {"fh": fh}))["data"]

    async def write_file(self, path: str, data: bytes) -> FileAttrs:
        """Whole-file write."""
        server, fh = await self._walk(path)
        await self._nfs(server, "setattr", {"fh": fh, "sattr": {"size": 0}})
        reply = await self._nfs(server, "write",
                                {"fh": fh, "offset": 0, "data": data},
                                size_bytes=max(256, len(data)))
        return FileAttrs.from_wire(reply["attrs"])

    async def create(self, dirpath: str, name: str) -> str:
        """Create a file; returns its (server-bound) handle."""
        server, fh = await self._walk(dirpath)
        reply = await self._nfs(server, "create",
                                {"fh": fh, "name": name, "sattr": {}})
        return reply["fh"]

    async def mkdir(self, dirpath: str, name: str) -> str:
        """Create a directory."""
        server, fh = await self._walk(dirpath)
        return (await self._nfs(server, "mkdir",
                                {"fh": fh, "name": name}))["fh"]

    async def remove(self, dirpath: str, name: str) -> None:
        """Unlink a file."""
        server, fh = await self._walk(dirpath)
        await self._nfs(server, "remove", {"fh": fh, "name": name})

    async def readdir(self, path: str) -> list[dict]:
        """List a directory.

        Note: entries under a *different* mount point are not visible here —
        each server only knows its own subtree (Figure 1's dashed line).
        """
        server, fh = await self._walk(path)
        return (await self._nfs(server, "readdir", {"fh": fh}))["entries"]
