"""Plain Sun NFS baseline (§2.1's comparison system).

"In a normal NFS implementation, each server machine maintains a set of
files disjoint from the sets maintained by all other servers ... The file
name space is built by linking together the directory trees provided by the
servers into a single tree.  This linking is done separately at each
client."  Servers never talk to each other; a crashed server takes its
subtree down with it (no failover — handles are server-bound).

- :class:`~repro.baseline.server.BaselineNfsServer` — one exported
  directory tree, local inode table, same NFS op vocabulary as Deceit;
- :class:`~repro.baseline.client.BaselineClient` — resolves paths through
  a per-client mount table mapping path prefixes to servers (Figure 1).
"""

from repro.baseline.client import BaselineClient
from repro.baseline.server import BaselineNfsServer

__all__ = ["BaselineClient", "BaselineNfsServer"]
