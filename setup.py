"""Legacy setup shim: enables `pip install -e . --no-use-pep517` offline.

All package metadata lives in ``pyproject.toml`` (the [project] table);
setuptools reads it from there for both build paths.
"""
from setuptools import setup

setup()
