#!/usr/bin/env python3
"""The paper's thesis in one table: per-file parameters buy measurable
trade-offs (§4).

Writes the same burst of updates to files configured differently and prints
latency/message cost per configuration — "needed features may be employed
without paying a penalty for unused features."

Run:  python examples/tunable_semantics.py
"""

from repro.core import FileParams, WriteOp
from repro.core.params import Availability
from repro.testbed import build_core_cluster

CONFIGS = [
    ("NFS-like default", FileParams()),
    ("replicated r=3, s=1", FileParams(min_replicas=3, write_safety=1)),
    ("replicated r=3, s=3 (sync)", FileParams(min_replicas=3, write_safety=3)),
    ("r=3, async unsafe (s=0)", FileParams(min_replicas=3, write_safety=0,
                                           stability_notification=False)),
    ("r=3, no stability notif.", FileParams(min_replicas=3, write_safety=1,
                                            stability_notification=False)),
    ("r=3, availability=low", FileParams(min_replicas=3,
                                         write_availability=Availability.LOW)),
]

BURST = 20


def measure(params: FileParams) -> dict:
    cluster = build_core_cluster(4)
    server = cluster.servers[0]

    async def burst():
        sid = await server.create(params=params, data=b"")
        cluster.metrics.counters.clear()
        t0 = cluster.kernel.now
        for i in range(BURST):
            await server.write(sid, WriteOp(kind="append", data=b"x" * 128))
        elapsed = cluster.kernel.now - t0
        return elapsed

    elapsed = cluster.run(burst(), limit=5_000_000.0)
    msgs = cluster.metrics.get("net.msgs")
    return {"ms_per_write": elapsed / BURST, "msgs_per_write": msgs / BURST}


def main() -> None:
    print(f"{'file configuration':<30}{'ms/write':>10}{'msgs/write':>12}")
    print("-" * 52)
    rows = {}
    for label, params in CONFIGS:
        rows[label] = measure(params)
        r = rows[label]
        print(f"{label:<30}{r['ms_per_write']:>10.2f}{r['msgs_per_write']:>12.1f}")

    # the qualitative shape the paper promises:
    assert rows["NFS-like default"]["msgs_per_write"] <= \
        rows["replicated r=3, s=1"]["msgs_per_write"]
    assert rows["r=3, async unsafe (s=0)"]["ms_per_write"] <= \
        rows["replicated r=3, s=3 (sync)"]["ms_per_write"]
    print("\nshape OK: you pay only for the semantics you ask for")


if __name__ == "__main__":
    main()
