#!/usr/bin/env python3
"""Scenario §6.2: bulk data collection and dispersion (the NASA case).

"For a very large data file, the user can turn off automatic localization
... the minimum replica level should be 1 until the file has reached its
final destination, and then it may be set to 2 to provide a single backup.
Data files can be quickly copied from one server to another using the blast
file transfer mechanism by manually forcing the creation of a replica on
the target server and then deleting the replica on the source server.  At
any time ... the file data is available for reading and writing via any
server."

Run:  python examples/data_dispersion.py
"""

from repro.testbed import build_cluster


MEGABYTE = 1024 * 1024


def main() -> None:
    cluster = build_cluster(n_servers=4, n_agents=1)
    agent = cluster.agents[0]
    telemetry = bytes(bytearray(range(256))) * (2 * MEGABYTE // 256)  # 2 MB

    async def scenario():
        await agent.mount()
        # collection station writes the big capture; migration stays OFF so
        # readers don't accidentally spray 2 MB replicas around the cell
        await agent.create("/", "telemetry.dat")
        await agent.set_params("/telemetry.dat", file_migration=False,
                               write_availability="medium")
        t0 = cluster.kernel.now
        await agent.write_file("/telemetry.dat", telemetry)
        print(f"captured {len(telemetry)//1024} KB on "
              f"{(await agent.locate('/telemetry.dat'))['holders']} "
              f"in {cluster.kernel.now - t0:.0f} ms (virtual)")

        # move it to the analysis machine with the blast transfer: force a
        # replica on the target, then drop the source copy
        t0 = cluster.kernel.now
        assert await agent.create_replica("/telemetry.dat", "s3")
        moved_ms = cluster.kernel.now - t0
        located = await agent.locate("/telemetry.dat")
        print(f"blast transfer to s3 took {moved_ms:.0f} ms (virtual); "
              f"replicas: {located['holders']}")

        # the file stays readable throughout — read while deleting source
        reader = cluster.kernel.spawn(agent.read_file("/telemetry.dat"))
        assert await agent.delete_replica("/telemetry.dat", "s0")
        data = await reader
        assert data == telemetry
        located = await agent.locate("/telemetry.dat")
        print(f"source replica dropped; file now lives on {located['holders']}")

        # at its destination, add a single backup (replica level 2, §6.2)
        await agent.set_params("/telemetry.dat", min_replicas=2)
        located = await agent.locate("/telemetry.dat")
        print(f"backup added: {located['holders']}")
        return located

    located = cluster.run(scenario(), limit=5_000_000.0)
    assert "s3" in located["holders"] and len(located["holders"]) == 2
    bytes_moved = cluster.metrics.get("deceit.replica_transfer_bytes")
    print(f"\ntotal blast-transfer bytes: {bytes_moved // 1024} KB")
    print("scenario OK — data dispersed without ever going offline")


if __name__ == "__main__":
    main()
