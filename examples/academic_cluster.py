#!/usr/bin/env python3
"""Scenario §6.1: the academic public workstation environment.

"A large number of small, inexpensive, and unreliable machines ... users
will typically want to set the replication level to 2 or 3 on important
source and text files; other files can be regenerated if necessary."

Runs the paper's recommended configuration under the §2.3 workload while
one unreliable server crashes mid-run, and prints availability and latency
— versus the same workload on a cluster left at replica level 1.

Run:  python examples/academic_cluster.py
"""

from repro.agent import AgentConfig
from repro.testbed import build_cluster
from repro.workloads import WorkloadConfig, WorkloadGenerator, replay


def run_campus(replicate_sources: bool) -> dict:
    cluster = build_cluster(n_servers=4, n_agents=3,
                            agent_config=AgentConfig(cache=True, failover=True))
    cfg = WorkloadConfig(n_clients=3, n_dirs=4, files_per_dir=6,
                         duration_ms=20_000.0, mean_interarrival_ms=80.0,
                         seed=61)
    trace = WorkloadGenerator(cfg).generate()

    async def scenario():
        # spread the clients across the workstations
        for i, agent in enumerate(cluster.agents):
            agent.current = i % len(cluster.servers)
            await agent.mount()
        # §6.1: "set the replication level to 2 or 3 on important source
        # and text files" — applied to every prepopulated file
        params = {"min_replicas": 3} if replicate_sources else None
        replay_task = cluster.kernel.spawn(
            replay(cluster, trace, file_params=params))
        # the client-0 workstation's server dies partway through the run
        await cluster.kernel.sleep(10_000.0)
        cluster.crash(0)
        return await replay_task

    stats = cluster.run(scenario(), limit=5_000_000.0)
    return {
        "availability": stats.availability,
        "ops": stats.attempted,
        "mean_ms": stats.latency.mean,
        "p99_ms": stats.latency.percentile(99),
        "failovers": cluster.metrics.get("agent.failovers"),
    }


def main() -> None:
    replicated = run_campus(replicate_sources=True)
    unreplicated = run_campus(replicate_sources=False)

    print("Academic workstation scenario (one server crash mid-run)")
    print(f"{'config':<28}{'ops':>6}{'avail':>9}{'mean ms':>9}{'p99 ms':>9}")
    for label, r in (("replica level 3 (paper §6.1)", replicated),
                     ("replica level 1 (default)", unreplicated)):
        print(f"{label:<28}{r['ops']:>6}{r['availability']:>9.3f}"
              f"{r['mean_ms']:>9.2f}{r['p99_ms']:>9.2f}")
    print(f"\nclient failovers (replicated run): {replicated['failovers']}")
    assert replicated["availability"] >= unreplicated["availability"]
    print("scenario OK — replication kept the campus available")


if __name__ == "__main__":
    main()
