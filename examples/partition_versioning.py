#!/usr/bin/env python3
"""Partitions, divergent versions, and user-level reconciliation (§3.5–§3.6).

Walks the paper's hard case end to end: a partition splits the cell, both
sides write the same file, the heal surfaces two *incomparable* versions —
both kept, conflict logged to the well-known file — and the user inspects
``report;<major>`` names and reconciles.

Run:  python examples/partition_versioning.py
"""

from repro.testbed import build_cluster


def main() -> None:
    cluster = build_cluster(n_servers=3, n_agents=1)
    agent = cluster.agents[0]

    async def setup():
        await agent.mount()
        fh = await agent.create("/", "report")
        await agent.write_file("/report", b"draft v1")
        # high write availability: we'd rather fork than block (§4)
        await agent.set_params("/report", min_replicas=3,
                               write_availability="high")
        return fh

    fh = cluster.run(setup())
    print("created /report, replicated on 3 servers, availability=high")

    # --- network partition: {s0, s1 + client} vs {s2} --------------------
    cluster.partition({0, 1}, {2})
    cluster.settle(800.0)
    print("partition: {s0,s1} | {s2}")

    async def write_both_sides():
        await agent.write_file("/report", b"majority edits")
        # the isolated server gets a write from "its" local user
        from repro.core import WriteOp
        await cluster.servers[2].segments.write(
            fh.sid, WriteOp(kind="setdata", data=b"minority edits",
                            meta={"length": 14}))

    cluster.run(write_both_sides())
    print("both sides wrote /report while partitioned")

    # --- heal: versions reconcile automatically into TWO live majors -----
    cluster.heal()
    cluster.settle(3000.0)

    async def inspect():
        versions = await agent.list_versions("/report")
        conflicts = await agent.conflicts()
        contents = {}
        for major in versions:
            contents[major] = await agent.read_file(fh.qualified(major))
        return versions, conflicts, contents

    versions, conflicts, contents = cluster.run(inspect())
    print(f"\nafter heal: {len(versions)} incomparable versions survive")
    for major, data in sorted(contents.items()):
        print(f"  report;{major} -> {data!r}")
    print(f"conflict log has {len(conflicts)} record(s): {conflicts[0]['sid']}")

    # --- the user resolves, using file semantics (§3.6) ------------------
    async def resolve():
        keep = max(contents, key=lambda m: len(contents[m]))
        dropped = await agent.reconcile("/report", keep=keep)
        await cluster.kernel.sleep(300.0)
        final = await agent.read_file("/report")
        return keep, dropped, final, await agent.conflicts()

    keep, dropped, final, conflicts_after = cluster.run(resolve())
    print(f"\nuser kept report;{keep}, dropped {dropped}")
    print(f"final /report: {final!r}; conflict log now {len(conflicts_after)} records")
    assert len(versions) == 2 and len(conflicts) >= 1 and not conflicts_after
    print("scenario OK — no update was silently lost")


if __name__ == "__main__":
    main()
